//! Simplified X.509-style certificates.
//!
//! The paper uses X.509 certificates as entity credentials for three
//! purposes: establishing provenance of trace topics at the TDN,
//! proof-of-possession signatures on registration and trace messages,
//! and encrypting responses so only the credentialed entity can read
//! them. This module provides exactly those capabilities with a
//! canonical binary TBS ("to be signed") encoding instead of ASN.1/DER,
//! which the scheme itself never inspects.

use crate::bigint::BigUint;
use crate::digest::DigestAlgorithm;
use crate::error::CryptoError;
use crate::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use crate::sha256::Sha256;
use crate::Digest;
use rand::Rng;

/// Certificate validity window in milliseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// Earliest instant at which the certificate is valid.
    pub not_before_ms: u64,
    /// Latest instant at which the certificate is valid.
    pub not_after_ms: u64,
}

impl Validity {
    /// A window starting at `now_ms` and lasting `duration_ms`.
    pub fn starting_now(now_ms: u64, duration_ms: u64) -> Self {
        Validity {
            not_before_ms: now_ms,
            not_after_ms: now_ms.saturating_add(duration_ms),
        }
    }

    /// Whether `at_ms` falls inside the window (inclusive bounds).
    pub fn contains(&self, at_ms: u64) -> bool {
        (self.not_before_ms..=self.not_after_ms).contains(&at_ms)
    }
}

/// A certificate binding a subject name to an RSA public key, signed
/// by an issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Serial number assigned by the issuer.
    pub serial: u64,
    /// Subject distinguished name (e.g. `"entity:worker-17"`).
    pub subject: String,
    /// Issuer distinguished name.
    pub issuer: String,
    /// The subject's public key.
    pub public_key: RsaPublicKey,
    /// Validity window.
    pub validity: Validity,
    /// RSA/SHA-256 signature over the TBS bytes, by the issuer's key.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Canonical "to be signed" byte encoding.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.serial.to_be_bytes());
        push_str(&mut out, &self.subject);
        push_str(&mut out, &self.issuer);
        let pk = self.public_key.to_bytes();
        out.extend_from_slice(&(pk.len() as u32).to_be_bytes());
        out.extend_from_slice(&pk);
        out.extend_from_slice(&self.validity.not_before_ms.to_be_bytes());
        out.extend_from_slice(&self.validity.not_after_ms.to_be_bytes());
        out
    }

    /// A short stable fingerprint (SHA-256 of the TBS bytes), used in
    /// discovery restrictions and ACLs.
    pub fn fingerprint(&self) -> [u8; 32] {
        Sha256::digest(&self.tbs_bytes()).try_into().unwrap()
    }

    /// Verifies this certificate against the issuer's public key and
    /// checks the validity window at `now_ms`.
    pub fn verify(&self, issuer_key: &RsaPublicKey, now_ms: u64) -> Result<(), CryptoError> {
        if !self.validity.contains(now_ms) {
            return Err(CryptoError::CertificateInvalid("outside validity window"));
        }
        issuer_key
            .verify(DigestAlgorithm::Sha256, &self.tbs_bytes(), &self.signature)
            .map_err(|_| CryptoError::CertificateInvalid("bad issuer signature"))
    }

    /// Whether this certificate is self-signed (issuer == subject and
    /// the signature verifies under its own key).
    pub fn is_self_signed(&self, now_ms: u64) -> bool {
        self.issuer == self.subject && self.verify(&self.public_key, now_ms).is_ok()
    }

    /// Canonical full encoding (TBS || signature), for wire transfer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let tbs = self.tbs_bytes();
        let mut out = Vec::with_capacity(tbs.len() + self.signature.len() + 8);
        out.extend_from_slice(&(tbs.len() as u32).to_be_bytes());
        out.extend_from_slice(&tbs);
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Inverse of [`Certificate::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let (tbs, rest) = read_chunk(bytes)?;
        let (sig, rest) = read_chunk(rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Malformed("trailing bytes in certificate"));
        }
        let mut cert = Self::parse_tbs(tbs)?;
        cert.signature = sig.to_vec();
        Ok(cert)
    }

    fn parse_tbs(tbs: &[u8]) -> Result<Self, CryptoError> {
        let mut cur = tbs;
        let serial = take_u64(&mut cur)?;
        let subject = take_str(&mut cur)?;
        let issuer = take_str(&mut cur)?;
        let (pk_bytes, rest) = read_chunk(cur)?;
        cur = rest;
        let public_key = RsaPublicKey::from_bytes(pk_bytes)?;
        let not_before_ms = take_u64(&mut cur)?;
        let not_after_ms = take_u64(&mut cur)?;
        if !cur.is_empty() {
            return Err(CryptoError::Malformed("trailing bytes in TBS"));
        }
        Ok(Certificate {
            serial,
            subject,
            issuer,
            public_key,
            validity: Validity {
                not_before_ms,
                not_after_ms,
            },
            signature: Vec::new(),
        })
    }
}

/// A subject's full credential: certificate plus matching private key.
///
/// This is what a traced entity or tracker holds; the certificate half
/// is what it presents to TDNs and brokers.
#[derive(Clone)]
pub struct Credential {
    /// The public certificate.
    pub certificate: Certificate,
    /// The private key matching `certificate.public_key`.
    pub private_key: RsaPrivateKey,
}

impl Credential {
    /// Signs `message` with this credential's private key using the
    /// paper's configuration (SHA-1 + PKCS#1).
    pub fn sign(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.private_key.sign(DigestAlgorithm::Sha1, message)
    }

    /// The subject name from the certificate.
    pub fn subject(&self) -> &str {
        &self.certificate.subject
    }
}

impl std::fmt::Debug for Credential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Credential(subject={})", self.certificate.subject)
    }
}

/// A certificate authority that can issue credentials.
///
/// The benchmarks and examples stand up one `CertificateAuthority` per
/// deployment; entities, brokers and TDNs all get credentials from it
/// so any party can verify any other party's certificate.
pub struct CertificateAuthority {
    name: String,
    keypair: RsaKeyPair,
    cert: Certificate,
    next_serial: u64,
    key_bits: usize,
}

impl CertificateAuthority {
    /// Creates a CA with a self-signed root certificate.
    ///
    /// `key_bits` controls both the CA key and issued-subject keys;
    /// the paper's configuration is 1024, tests may use 512 for speed.
    pub fn new(
        name: &str,
        key_bits: usize,
        validity: Validity,
        rng: &mut dyn Rng,
    ) -> Result<Self, CryptoError> {
        let keypair = RsaKeyPair::generate(key_bits, rng)?;
        let mut cert = Certificate {
            serial: 0,
            subject: name.to_string(),
            issuer: name.to_string(),
            public_key: keypair.public.clone(),
            validity,
            signature: Vec::new(),
        };
        cert.signature = keypair
            .private
            .sign(DigestAlgorithm::Sha256, &cert.tbs_bytes())?;
        Ok(CertificateAuthority {
            name: name.to_string(),
            keypair,
            cert,
            next_serial: 1,
            key_bits,
        })
    }

    /// The CA's own (self-signed) certificate; distribute this as the
    /// trust anchor.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Issues a fresh credential (new key pair + signed certificate)
    /// for `subject`.
    pub fn issue(
        &mut self,
        subject: &str,
        validity: Validity,
        rng: &mut dyn Rng,
    ) -> Result<Credential, CryptoError> {
        let keypair = RsaKeyPair::generate(self.key_bits, rng)?;
        let cert = self.issue_for_key(subject, keypair.public.clone(), validity)?;
        Ok(Credential {
            certificate: cert,
            private_key: keypair.private,
        })
    }

    /// Issues a certificate over an externally generated public key.
    pub fn issue_for_key(
        &mut self,
        subject: &str,
        public_key: RsaPublicKey,
        validity: Validity,
    ) -> Result<Certificate, CryptoError> {
        let mut cert = Certificate {
            serial: self.next_serial,
            subject: subject.to_string(),
            issuer: self.name.clone(),
            public_key,
            validity,
            signature: Vec::new(),
        };
        self.next_serial += 1;
        cert.signature = self
            .keypair
            .private
            .sign(DigestAlgorithm::Sha256, &cert.tbs_bytes())?;
        Ok(cert)
    }

    /// Verifies a certificate chain `[leaf]` against this CA at `now_ms`.
    pub fn verify_issued(&self, cert: &Certificate, now_ms: u64) -> Result<(), CryptoError> {
        if cert.issuer != self.name {
            return Err(CryptoError::CertificateInvalid("unknown issuer"));
        }
        cert.verify(&self.keypair.public, now_ms)
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_chunk(bytes: &[u8]) -> Result<(&[u8], &[u8]), CryptoError> {
    if bytes.len() < 4 {
        return Err(CryptoError::Malformed("truncated length prefix"));
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() < 4 + len {
        return Err(CryptoError::Malformed("truncated chunk"));
    }
    Ok((&bytes[4..4 + len], &bytes[4 + len..]))
}

fn take_u64(cur: &mut &[u8]) -> Result<u64, CryptoError> {
    if cur.len() < 8 {
        return Err(CryptoError::Malformed("truncated u64"));
    }
    let (head, tail) = cur.split_at(8);
    *cur = tail;
    Ok(u64::from_be_bytes(head.try_into().unwrap()))
}

fn take_str(cur: &mut &[u8]) -> Result<String, CryptoError> {
    let (chunk, rest) = read_chunk(cur)?;
    *cur = rest;
    String::from_utf8(chunk.to_vec()).map_err(|_| CryptoError::Malformed("non-UTF8 string"))
}

/// `BigUint` re-export check helper: fingerprints as hex for logs.
pub fn fingerprint_hex(fp: &[u8; 32]) -> String {
    BigUint::from_bytes_be(fp).to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::{Mutex, OnceLock};

    const NOW: u64 = 1_700_000_000_000;

    fn validity() -> Validity {
        Validity::starting_now(NOW - 1000, 3_600_000)
    }

    /// Shared CA (512-bit keys keep the suite fast while still able to
    /// produce SHA-256 signatures).
    fn ca() -> &'static Mutex<CertificateAuthority> {
        static CA: OnceLock<Mutex<CertificateAuthority>> = OnceLock::new();
        CA.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(42);
            Mutex::new(CertificateAuthority::new("test-ca", 512, validity(), &mut rng).unwrap())
        })
    }

    #[test]
    fn ca_root_is_self_signed() {
        let ca = ca().lock().unwrap();
        assert!(ca.certificate().is_self_signed(NOW));
    }

    #[test]
    fn issued_certificate_verifies() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut ca = ca().lock().unwrap();
        let cred = ca.issue("entity:alpha", validity(), &mut rng).unwrap();
        ca.verify_issued(&cred.certificate, NOW).unwrap();
        assert_eq!(cred.subject(), "entity:alpha");
    }

    #[test]
    fn expired_certificate_rejected() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut ca = ca().lock().unwrap();
        let cred = ca.issue("entity:beta", validity(), &mut rng).unwrap();
        let too_late = validity().not_after_ms + 1;
        assert_eq!(
            ca.verify_issued(&cred.certificate, too_late),
            Err(CryptoError::CertificateInvalid("outside validity window"))
        );
        let too_early = validity().not_before_ms - 1;
        assert!(ca.verify_issued(&cred.certificate, too_early).is_err());
    }

    #[test]
    fn validity_boundary_is_inclusive_at_both_ends() {
        // Cross-layer contract: certificates, authorization tokens and
        // session keys all accept at the exact boundary instants —
        // a cert accepted at `not_after_ms` must not be rejected by a
        // downstream layer at the same instant (see token and
        // session-key boundary tests for the other layers).
        let mut rng = StdRng::seed_from_u64(48);
        let mut ca = ca().lock().unwrap();
        let cred = ca.issue("entity:edge", validity(), &mut rng).unwrap();
        let window = validity();
        assert!(window.contains(window.not_before_ms));
        assert!(window.contains(window.not_after_ms));
        assert!(!window.contains(window.not_after_ms + 1));
        ca.verify_issued(&cred.certificate, window.not_before_ms)
            .expect("accepted at exactly not_before_ms");
        ca.verify_issued(&cred.certificate, window.not_after_ms)
            .expect("accepted at exactly not_after_ms");
    }

    #[test]
    fn tampered_certificate_rejected() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut ca = ca().lock().unwrap();
        let cred = ca.issue("entity:gamma", validity(), &mut rng).unwrap();
        let mut cert = cred.certificate.clone();
        cert.subject = "entity:mallory".to_string();
        assert!(ca.verify_issued(&cert, NOW).is_err());
    }

    #[test]
    fn wrong_issuer_rejected() {
        let mut rng = StdRng::seed_from_u64(46);
        let mut other = CertificateAuthority::new("other-ca", 512, validity(), &mut rng).unwrap();
        let cred = other.issue("entity:delta", validity(), &mut rng).unwrap();
        let ca = ca().lock().unwrap();
        assert_eq!(
            ca.verify_issued(&cred.certificate, NOW),
            Err(CryptoError::CertificateInvalid("unknown issuer"))
        );
    }

    #[test]
    fn serials_increment() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut ca = ca().lock().unwrap();
        let a = ca.issue("entity:s1", validity(), &mut rng).unwrap();
        let b = ca.issue("entity:s2", validity(), &mut rng).unwrap();
        assert!(b.certificate.serial > a.certificate.serial);
    }

    #[test]
    fn certificate_byte_round_trip() {
        let mut rng = StdRng::seed_from_u64(48);
        let mut ca = ca().lock().unwrap();
        let cred = ca.issue("entity:rt", validity(), &mut rng).unwrap();
        let bytes = cred.certificate.to_bytes();
        let back = Certificate::from_bytes(&bytes).unwrap();
        assert_eq!(back, cred.certificate);
        ca.verify_issued(&back, NOW).unwrap();
        assert!(Certificate::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let mut rng = StdRng::seed_from_u64(49);
        let mut ca = ca().lock().unwrap();
        let a = ca.issue("entity:fa", validity(), &mut rng).unwrap();
        let b = ca.issue("entity:fb", validity(), &mut rng).unwrap();
        assert_eq!(a.certificate.fingerprint(), a.certificate.fingerprint());
        assert_ne!(a.certificate.fingerprint(), b.certificate.fingerprint());
        assert!(!fingerprint_hex(&a.certificate.fingerprint()).is_empty());
    }

    #[test]
    fn credential_signs_with_sha1_pkcs1() {
        let mut rng = StdRng::seed_from_u64(50);
        let mut ca = ca().lock().unwrap();
        let cred = ca.issue("entity:signer", validity(), &mut rng).unwrap();
        let sig = cred.sign(b"registration message").unwrap();
        cred.certificate
            .public_key
            .verify(DigestAlgorithm::Sha1, b"registration message", &sig)
            .unwrap();
    }

    #[test]
    fn validity_window_bounds_are_inclusive() {
        let v = Validity {
            not_before_ms: 100,
            not_after_ms: 200,
        };
        assert!(v.contains(100));
        assert!(v.contains(200));
        assert!(!v.contains(99));
        assert!(!v.contains(201));
    }
}
