//! Block-cipher modes of operation (NIST SP 800-38A): CBC and CTR.
//!
//! Trace messages in the reproduction are encrypted with AES-CBC plus
//! PKCS#7 padding by default (matching the paper's "encryption
//! algorithm and padding scheme" negotiation); CTR is provided for the
//! key-stream case.

use crate::aes::{Aes, BLOCK_SIZE};
use crate::error::CryptoError;
use crate::padding::{pkcs7_pad, pkcs7_unpad};

/// Cipher mode selector carried in key-distribution payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherMode {
    /// Cipher block chaining with PKCS#7 padding.
    Cbc,
    /// Counter mode (no padding required).
    Ctr,
}

impl CipherMode {
    /// Stable single-byte identifier for wire encoding.
    pub fn wire_id(self) -> u8 {
        match self {
            CipherMode::Cbc => 1,
            CipherMode::Ctr => 2,
        }
    }

    /// Inverse of [`CipherMode::wire_id`].
    pub fn from_wire_id(id: u8) -> Result<Self, CryptoError> {
        match id {
            1 => Ok(CipherMode::Cbc),
            2 => Ok(CipherMode::Ctr),
            other => Err(CryptoError::UnsupportedAlgorithm(other)),
        }
    }
}

/// Encrypts with AES-CBC + PKCS#7. `iv` must be 16 bytes.
pub fn cbc_encrypt(key: &[u8], iv: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let _t = crate::instrument::AES_ENCRYPT_US.start_timer();
    let aes = Aes::new(key)?;
    let iv: [u8; BLOCK_SIZE] = iv.try_into().map_err(|_| CryptoError::InvalidLength {
        what: "CBC IV",
        expected: BLOCK_SIZE,
        actual: iv.len(),
    })?;
    let padded = pkcs7_pad(plaintext, BLOCK_SIZE);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = iv;
    for chunk in padded.chunks_exact(BLOCK_SIZE) {
        let mut block: [u8; BLOCK_SIZE] = chunk.try_into().unwrap();
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    Ok(out)
}

/// Decrypts AES-CBC + PKCS#7.
pub fn cbc_decrypt(key: &[u8], iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let _t = crate::instrument::AES_DECRYPT_US.start_timer();
    let aes = Aes::new(key)?;
    let iv: [u8; BLOCK_SIZE] = iv.try_into().map_err(|_| CryptoError::InvalidLength {
        what: "CBC IV",
        expected: BLOCK_SIZE,
        actual: iv.len(),
    })?;
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CryptoError::InvalidLength {
            what: "CBC ciphertext",
            expected: BLOCK_SIZE,
            actual: ciphertext.len(),
        });
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = iv;
    for chunk in ciphertext.chunks_exact(BLOCK_SIZE) {
        let cipher_block: [u8; BLOCK_SIZE] = chunk.try_into().unwrap();
        let mut block = cipher_block;
        aes.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        out.extend_from_slice(&block);
        prev = cipher_block;
    }
    pkcs7_unpad(&out, BLOCK_SIZE)
}

/// AES-CTR keystream transform (encryption and decryption are the same
/// operation). `nonce` must be 16 bytes; the low 32 bits are treated as
/// the big-endian block counter.
pub fn ctr_transform(key: &[u8], nonce: &[u8], data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let _t = crate::instrument::AES_CTR_US.start_timer();
    let aes = Aes::new(key)?;
    let counter0: [u8; BLOCK_SIZE] = nonce.try_into().map_err(|_| CryptoError::InvalidLength {
        what: "CTR nonce",
        expected: BLOCK_SIZE,
        actual: nonce.len(),
    })?;
    let mut out = Vec::with_capacity(data.len());
    let mut counter = counter0;
    for chunk in data.chunks(BLOCK_SIZE) {
        let mut keystream = counter;
        aes.encrypt_block(&mut keystream);
        for (d, k) in chunk.iter().zip(keystream.iter()) {
            out.push(d ^ k);
        }
        // Increment the big-endian counter (carry across all 16 bytes).
        for byte in counter.iter_mut().rev() {
            let (v, overflow) = byte.overflowing_add(1);
            *byte = v;
            if !overflow {
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // SP 800-38A F.2.1: CBC-AES128 encrypt, first block.
    #[test]
    fn sp800_38a_cbc_aes128_first_block() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = unhex("000102030405060708090a0b0c0d0e0f");
        let pt = unhex("6bc1bee22e409f96e93d7e117393172a");
        let ct = cbc_encrypt(&key, &iv, &pt).unwrap();
        assert_eq!(
            &ct[..16],
            unhex("7649abac8119b246cee98e9b12e9197d").as_slice()
        );
    }

    // SP 800-38A F.2.1 full four-block chain (our output additionally
    // carries a padding block at the end).
    #[test]
    fn sp800_38a_cbc_aes128_chain() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = unhex("000102030405060708090a0b0c0d0e0f");
        let pt = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let ct = cbc_encrypt(&key, &iv, &pt).unwrap();
        let expected = unhex(
            "7649abac8119b246cee98e9b12e9197d\
             5086cb9b507219ee95db113a917678b2\
             73bed6b8e3c1743b7116e69e22229516\
             3ff1caa1681fac09120eca307586e1a7",
        );
        assert_eq!(&ct[..64], expected.as_slice());
        assert_eq!(ct.len(), 80); // + one PKCS#7 padding block
        assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), pt);
    }

    // SP 800-38A F.5.1: CTR-AES128, first block.
    #[test]
    fn sp800_38a_ctr_aes128_first_block() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let nonce = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let pt = unhex("6bc1bee22e409f96e93d7e117393172a");
        let ct = ctr_transform(&key, &nonce, &pt).unwrap();
        assert_eq!(ct, unhex("874d6191b620e3261bef6864990db6ce"));
    }

    #[test]
    fn ctr_is_its_own_inverse() {
        let key = [0x42u8; 24];
        let nonce = [7u8; 16];
        let msg = b"trace message: entity-17 is READY";
        let ct = ctr_transform(&key, &nonce, msg).unwrap();
        assert_ne!(&ct, msg);
        assert_eq!(ctr_transform(&key, &nonce, &ct).unwrap(), msg);
    }

    #[test]
    fn ctr_counter_carries_across_bytes() {
        // A nonce ending in 0xff forces the carry path immediately.
        let key = [1u8; 16];
        let nonce = [0xffu8; 16];
        let data = vec![0u8; 48]; // 3 blocks
        let ks = ctr_transform(&key, &nonce, &data).unwrap();
        // Keystream blocks must differ (counter moved on wrap-around).
        assert_ne!(&ks[..16], &ks[16..32]);
        assert_ne!(&ks[16..32], &ks[32..48]);
    }

    #[test]
    fn cbc_round_trip_aes192_paper_configuration() {
        // The paper uses 192-bit AES keys for trace encryption.
        let key = [0x5au8; 24];
        let iv = [0x11u8; 16];
        let msg = b"ALLS_WELL heartbeat payload for entity-42";
        let ct = cbc_encrypt(&key, &iv, msg).unwrap();
        assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), msg);
    }

    #[test]
    fn cbc_rejects_bad_iv_or_ciphertext() {
        let key = [0u8; 16];
        assert!(cbc_encrypt(&key, &[0u8; 15], b"x").is_err());
        assert!(cbc_decrypt(&key, &[0u8; 16], &[0u8; 15]).is_err());
        assert!(cbc_decrypt(&key, &[0u8; 16], &[]).is_err());
    }

    #[test]
    fn cbc_tamper_detection_via_padding() {
        let key = [9u8; 16];
        let iv = [3u8; 16];
        let ct = cbc_encrypt(&key, &iv, b"short").unwrap();
        // Flipping a bit in the last block almost always corrupts padding.
        let mut tampered = ct.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xff;
        let result = cbc_decrypt(&key, &iv, &tampered);
        if let Ok(pt) = result {
            assert_ne!(pt, b"short");
        }
    }

    #[test]
    fn wire_id_round_trip() {
        for mode in [CipherMode::Cbc, CipherMode::Ctr] {
            assert_eq!(CipherMode::from_wire_id(mode.wire_id()).unwrap(), mode);
        }
        assert!(CipherMode::from_wire_id(0).is_err());
    }
}
