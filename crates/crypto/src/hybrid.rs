//! Hybrid public-key envelopes (RSA-encrypted symmetric key + AES body).
//!
//! The paper uses this construction twice:
//!
//! * registration responses are "encrypted with a randomly generated
//!   secret key, and this secret key is encrypted using the entity's
//!   public key" (§3.2), and
//! * the secret trace key is distributed to each authorized tracker as
//!   "a combination of the tracker's credential and a randomly
//!   generated secret key" (§5.1).

use crate::aes::KeySize;
use crate::error::CryptoError;
use crate::modes::{cbc_decrypt, cbc_encrypt, CipherMode};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use rand::Rng;

/// A sealed payload: only the holder of the recipient's private key
/// can recover the plaintext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedEnvelope {
    /// The symmetric key, encrypted with the recipient's RSA key.
    pub encrypted_key: Vec<u8>,
    /// CBC initialization vector.
    pub iv: [u8; 16],
    /// AES-CBC ciphertext of the payload.
    pub ciphertext: Vec<u8>,
    /// Symmetric cipher parameters (negotiated, per the paper).
    pub key_size: KeySize,
    /// Cipher mode (always CBC for envelopes in this implementation).
    pub mode: CipherMode,
}

impl SealedEnvelope {
    /// Seals `plaintext` for `recipient` with a fresh random
    /// `key_size` AES key (the paper's configuration is
    /// [`KeySize::Aes192`]).
    pub fn seal(
        recipient: &RsaPublicKey,
        plaintext: &[u8],
        key_size: KeySize,
        rng: &mut dyn Rng,
    ) -> Result<Self, CryptoError> {
        let mut key = vec![0u8; key_size.key_len()];
        rng.fill_bytes(&mut key);
        let mut iv = [0u8; 16];
        rng.fill_bytes(&mut iv);
        let ciphertext = cbc_encrypt(&key, &iv, plaintext)?;
        let encrypted_key = recipient.encrypt(&key, rng)?;
        Ok(SealedEnvelope {
            encrypted_key,
            iv,
            ciphertext,
            key_size,
            mode: CipherMode::Cbc,
        })
    }

    /// Opens the envelope with the recipient's private key.
    pub fn open(&self, recipient: &RsaPrivateKey) -> Result<Vec<u8>, CryptoError> {
        let key = recipient.decrypt(&self.encrypted_key)?;
        if key.len() != self.key_size.key_len() {
            return Err(CryptoError::InvalidLength {
                what: "envelope symmetric key",
                expected: self.key_size.key_len(),
                actual: key.len(),
            });
        }
        cbc_decrypt(&key, &self.iv, &self.ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static RsaKeyPair {
        static KP: OnceLock<RsaKeyPair> = OnceLock::new();
        KP.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(77);
            RsaKeyPair::generate(512, &mut rng).unwrap()
        })
    }

    #[test]
    fn seal_open_round_trip() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(1);
        let msg = b"session-id: 0123456789abcdef, request-id: 42";
        for ks in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let env = SealedEnvelope::seal(&kp.public, msg, ks, &mut rng).unwrap();
            assert_eq!(env.open(&kp.private).unwrap(), msg);
        }
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(2);
        let other = RsaKeyPair::generate(512, &mut rng).unwrap();
        let env =
            SealedEnvelope::seal(&kp.public, b"secret", KeySize::Aes192, &mut rng).unwrap();
        assert!(env.open(&other.private).is_err());
    }

    #[test]
    fn tampered_ciphertext_fails_or_differs() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(3);
        let env =
            SealedEnvelope::seal(&kp.public, b"payload-bytes", KeySize::Aes192, &mut rng).unwrap();
        let mut tampered = env.clone();
        tampered.ciphertext[0] ^= 0xff;
        if let Ok(pt) = tampered.open(&kp.private) { assert_ne!(pt, b"payload-bytes") }
    }

    #[test]
    fn envelopes_are_randomized() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(4);
        let e1 = SealedEnvelope::seal(&kp.public, b"m", KeySize::Aes128, &mut rng).unwrap();
        let e2 = SealedEnvelope::seal(&kp.public, b"m", KeySize::Aes128, &mut rng).unwrap();
        assert_ne!(e1.ciphertext, e2.ciphertext);
        assert_ne!(e1.encrypted_key, e2.encrypted_key);
    }

    #[test]
    fn large_payloads_supported() {
        // Payload larger than the RSA modulus must still work (that is
        // the point of the hybrid construction).
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(5);
        let big = vec![0x5au8; 4096];
        let env = SealedEnvelope::seal(&kp.public, &big, KeySize::Aes192, &mut rng).unwrap();
        assert_eq!(env.open(&kp.private).unwrap(), big);
    }
}
