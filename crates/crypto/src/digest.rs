//! Common trait for streaming message digests.

use crate::error::CryptoError;
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// A streaming message digest (Merkle–Damgård construction).
pub trait Digest: Default {
    /// Output size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (needed by HMAC).
    const BLOCK_LEN: usize;

    /// Absorbs `data` into the state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the digest and produces the final hash.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut d = Self::default();
        d.update(data);
        d.finalize()
    }
}

/// Runtime-selectable digest algorithm identifier, used in wire
/// messages and certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DigestAlgorithm {
    /// SHA-1 (160-bit). The paper's signing benchmarks use
    /// 1024-bit RSA with 160-bit SHA-1.
    Sha1,
    /// SHA-256 (256-bit). Used for certificates in this reproduction.
    Sha256,
}

impl DigestAlgorithm {
    /// Output length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            DigestAlgorithm::Sha1 => 20,
            DigestAlgorithm::Sha256 => 32,
        }
    }

    /// Hashes `data` with the selected algorithm.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            DigestAlgorithm::Sha1 => Sha1::digest(data),
            DigestAlgorithm::Sha256 => Sha256::digest(data),
        }
    }

    /// Stable single-byte identifier for wire encoding.
    pub fn wire_id(self) -> u8 {
        match self {
            DigestAlgorithm::Sha1 => 1,
            DigestAlgorithm::Sha256 => 2,
        }
    }

    /// Inverse of [`DigestAlgorithm::wire_id`].
    pub fn from_wire_id(id: u8) -> Result<Self, CryptoError> {
        match id {
            1 => Ok(DigestAlgorithm::Sha1),
            2 => Ok(DigestAlgorithm::Sha256),
            other => Err(CryptoError::UnsupportedAlgorithm(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_id_round_trip() {
        for alg in [DigestAlgorithm::Sha1, DigestAlgorithm::Sha256] {
            assert_eq!(DigestAlgorithm::from_wire_id(alg.wire_id()).unwrap(), alg);
        }
        assert!(DigestAlgorithm::from_wire_id(0).is_err());
        assert!(DigestAlgorithm::from_wire_id(99).is_err());
    }

    #[test]
    fn output_len_matches_digest() {
        for alg in [DigestAlgorithm::Sha1, DigestAlgorithm::Sha256] {
            assert_eq!(alg.digest(b"x").len(), alg.output_len());
        }
    }
}
