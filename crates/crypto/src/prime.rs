//! Probabilistic prime generation (Miller–Rabin) for RSA key
//! generation.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use rand::Rng;

/// Primes below 1000 used for cheap trial division before the
/// expensive Miller–Rabin rounds.
const SMALL_PRIMES: [u64; 167] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Number of Miller–Rabin rounds; 40 gives an error probability below
/// 2^-80 for the key sizes used here.
const MR_ROUNDS: usize = 40;

/// Samples a uniformly random value with exactly `bits` bits
/// (top bit set).
pub fn random_with_bits(bits: usize, rng: &mut dyn Rng) -> BigUint {
    assert!(bits >= 2, "need at least 2 bits");
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    // Clear excess high bits, then force the top bit.
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    buf[0] |= 1 << (7 - excess);
    BigUint::from_bytes_be(&buf)
}

/// Samples a uniformly random value in `[0, bound)` by rejection.
pub fn random_below(bound: &BigUint, rng: &mut dyn Rng) -> BigUint {
    assert!(!bound.is_zero());
    let bits = bound.bit_length();
    let bytes = bits.div_ceil(8);
    let excess = bytes * 8 - bits;
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        buf[0] &= 0xffu8 >> excess;
        let candidate = BigUint::from_bytes_be(&buf);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Miller–Rabin primality test with `MR_ROUNDS` random bases.
pub fn is_probably_prime(n: &BigUint, rng: &mut dyn Rng) -> bool {
    if n < &BigUint::from_u64(2) {
        return false;
    }
    if let Some(small) = n.to_u64() {
        if small == 2 || small == 3 {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).map(|r| r.is_zero()).unwrap_or(false) {
            return false;
        }
    }

    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    'witness: for _ in 0..MR_ROUNDS {
        // Base a in [2, n-2].
        let range = n.sub(&BigUint::from_u64(3));
        let a = random_below(&range, rng).add(&two);
        let mut x = match a.modpow(&d, n) {
            Ok(x) => x,
            Err(_) => return false,
        };
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = match x.modpow(&two, n) {
                Ok(x) => x,
                Err(_) => return false,
            };
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn generate_prime(bits: usize, rng: &mut dyn Rng) -> Result<BigUint, CryptoError> {
    // Expected attempts ~ bits * ln2 / 2; give generous headroom.
    let max_attempts = bits.max(64) * 64;
    for _ in 0..max_attempts {
        let mut candidate = random_with_bits(bits, rng);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if candidate.bit_length() != bits {
            continue;
        }
        if is_probably_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn known_primes_pass() {
        let mut r = rng();
        for p in [2u64, 3, 5, 101, 997, 7919, 1_000_000_007, 0xffffffff00000001] {
            assert!(
                is_probably_prime(&BigUint::from_u64(p), &mut r),
                "p={p} should be prime"
            );
        }
    }

    #[test]
    fn known_composites_fail() {
        let mut r = rng();
        for c in [1u64, 4, 100, 999, 7917, 1_000_000_008] {
            assert!(
                !is_probably_prime(&BigUint::from_u64(c), &mut r),
                "c={c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_fail() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probably_prime(&BigUint::from_u64(c), &mut r),
                "Carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn random_with_bits_has_exact_length() {
        let mut r = rng();
        for bits in [8usize, 9, 63, 64, 65, 512] {
            for _ in 0..5 {
                let v = random_with_bits(bits, &mut r);
                assert_eq!(v.bit_length(), bits, "bits={bits}");
            }
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            assert!(random_below(&bound, &mut r) < bound);
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [64usize, 128] {
            let p = generate_prime(bits, &mut r).unwrap();
            assert_eq!(p.bit_length(), bits);
            assert!(is_probably_prime(&p, &mut r));
        }
    }

    #[test]
    fn generated_256_bit_prime() {
        let mut r = rng();
        let p = generate_prime(256, &mut r).unwrap();
        assert_eq!(p.bit_length(), 256);
        assert!(p.is_odd());
    }
}
