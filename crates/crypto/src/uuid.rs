//! 128-bit universally unique identifiers (RFC 4122 version 4).
//!
//! Trace topics in the paper are "a 128-bit identifier that is
//! guaranteed to be unique in space and time", generated **at the
//! TDN** so no entity can claim another entity's topic. The random
//! 122 bits are also the scheme's guessing-resistance (§4.1).

use crate::error::CryptoError;
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// A 128-bit version-4 UUID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid([u8; 16]);

impl Uuid {
    /// Generates a random version-4 UUID.
    pub fn new_v4(rng: &mut dyn Rng) -> Self {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        // Version 4 in the high nibble of byte 6.
        bytes[6] = (bytes[6] & 0x0f) | 0x40;
        // RFC 4122 variant in the top bits of byte 8.
        bytes[8] = (bytes[8] & 0x3f) | 0x80;
        Uuid(bytes)
    }

    /// Constructs from raw bytes (no version/variant validation; used
    /// when decoding wire messages).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Uuid(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// The nil UUID (all zeros), used as a sentinel in tests.
    pub fn nil() -> Self {
        Uuid([0u8; 16])
    }

    /// RFC 4122 version number (4 for generated values).
    pub fn version(&self) -> u8 {
        self.0[6] >> 4
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.0.iter().enumerate() {
            if matches!(i, 4 | 6 | 8 | 10) {
                write!(f, "-")?;
            }
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uuid({self})")
    }
}

impl FromStr for Uuid {
    type Err = CryptoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|&c| c != '-').collect();
        if hex.len() != 32 {
            return Err(CryptoError::Malformed("UUID must have 32 hex digits"));
        }
        let mut bytes = [0u8; 16];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                .map_err(|_| CryptoError::Malformed("UUID hex digit"))?;
        }
        Ok(Uuid(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn v4_uuids_have_version_and_variant_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let u = Uuid::new_v4(&mut rng);
            assert_eq!(u.version(), 4);
            assert_eq!(u.as_bytes()[8] & 0xc0, 0x80);
        }
    }

    #[test]
    fn display_format_is_canonical() {
        let u = Uuid::from_bytes([
            0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0x4d, 0xef, 0x80, 0x01, 0x02, 0x03, 0x04, 0x05,
            0x06, 0x07,
        ]);
        assert_eq!(u.to_string(), "12345678-9abc-4def-8001-020304050607");
    }

    #[test]
    fn parse_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = Uuid::new_v4(&mut rng);
        let parsed: Uuid = u.to_string().parse().unwrap();
        assert_eq!(parsed, u);
        // Also accepts the dash-less form.
        let compact: String = u.to_string().chars().filter(|&c| c != '-').collect();
        assert_eq!(compact.parse::<Uuid>().unwrap(), u);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-uuid".parse::<Uuid>().is_err());
        assert!("12345678-9abc-4def-8001".parse::<Uuid>().is_err());
        assert!("zz345678-9abc-4def-8001-020304050607".parse::<Uuid>().is_err());
    }

    #[test]
    fn distinct_draws_are_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Uuid::new_v4(&mut rng);
        let b = Uuid::new_v4(&mut rng);
        assert_ne!(a, b);
        assert_ne!(a, Uuid::nil());
    }
}
