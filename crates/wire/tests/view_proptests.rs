//! Property-based agreement between the zero-copy [`MessageView`]
//! parser and the owned [`Message`] decoder: for arbitrary envelopes
//! (any combination of signature, token, MAC and trace context), for
//! frames carrying unknown trailing sections from hypothetical newer
//! peers, and across v2 → v3 wire upgrades.

use nb_wire::codec::{Decode, Encode, Writer};
use nb_wire::message::{Message, SessionTag, SECTION_SESSION, SECTION_TRACE};
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::topic::Topic;
use nb_wire::{topic_hash, MessageView, Payload};
use nb_crypto::bigint::BigUint;
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::Uuid;
use nb_telemetry::TraceContext;
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_-]{1,12}".prop_filter("reserved", |s| {
        !matches!(
            s.as_str(),
            "Broker"
                | "Publish"
                | "Subscribe"
                | "PublishSubscribe"
                | "Suppress"
                | "Limited"
                | "Disseminate"
        )
    })
}

fn arb_topic() -> impl Strategy<Value = Topic> {
    proptest::collection::vec(arb_segment(), 1..6)
        .prop_map(|segs| Topic::from_segments(segs).unwrap())
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Ack),
        Just(Payload::SilentModeRequest),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, sent_at_ms)| Payload::Ping { seq, sent_at_ms }),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|data| Payload::Blob { data }),
    ]
}

/// Structurally arbitrary tokens — the codec does not verify them.
fn arb_token() -> impl Strategy<Value = AuthorizationToken> {
    (
        proptest::array::uniform16(any::<u8>()),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 1..48),
    )
        .prop_map(|(uuid, from, until, signature)| AuthorizationToken {
            trace_topic: Uuid::from_bytes(uuid),
            delegate_key: RsaPublicKey::new(BigUint::from_u64(3233), BigUint::from_u64(17)),
            rights: Rights::Publish,
            valid_from_ms: from,
            valid_until_ms: until,
            signature,
        })
}

fn arb_session() -> impl Strategy<Value = SessionTag> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::array::uniform32(any::<u8>()),
    )
        .prop_map(|(key_id, seq, mac)| SessionTag { key_id, seq, mac })
}

fn arb_trace() -> impl Strategy<Value = TraceContext> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>(), any::<bool>()).prop_map(
        |(hi, lo, parent_span, hop_count, sampled)| TraceContext {
            trace_id: (u128::from(hi) << 64) | u128::from(lo),
            parent_span,
            hop_count,
            sampled,
        },
    )
}

/// An arbitrary envelope: every authentication field independently
/// present or absent.
fn arb_message() -> impl Strategy<Value = Message> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            arb_topic(),
            "[a-z:_-]{1,16}",
            any::<u64>(),
            arb_payload(),
        ),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 1..64)),
        proptest::option::of(arb_token()),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 1..32)),
        proptest::option::of(arb_trace()),
        proptest::option::of(arb_session()),
    )
        .prop_map(
            |(
                (id, correlation_id, topic, sender, timestamp_ms, payload),
                sig,
                token,
                mac,
                trace,
                session,
            )| {
                let mut m = Message::new(id, topic, sender, timestamp_ms, payload)
                    .correlated(correlation_id);
                m.signature = sig;
                m.token = token;
                m.mac = mac;
                m.trace = trace;
                m.session = session;
                m
            },
        )
}

/// Re-encodes `m` in the v3 layout but with an explicit trailing
/// section list, emulating a newer peer that appends extension
/// sections this decoder has never heard of.
fn encode_v3_with_sections(m: &Message, sections: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(3);
    w.put_u64(m.id);
    w.put_u64(m.correlation_id);
    m.topic.encode(&mut w);
    w.put_str(&m.sender);
    w.put_u64(m.timestamp_ms);
    let mark = w.reserve_u32();
    m.payload.encode(&mut w);
    let payload_len = w.len() - mark - 4;
    w.patch_u32(mark, payload_len as u32);
    w.put_option(&m.signature, |w, s| w.put_bytes(s));
    w.put_option(&m.token, |w, t| t.encode(w));
    w.put_option(&m.mac, |w, m| w.put_bytes(m));
    w.put_varint(sections.len() as u64);
    for (tag, body) in sections {
        w.put_u8(*tag);
        w.put_bytes(body);
    }
    w.into_bytes()
}

/// Encodes a trace context exactly as the envelope's trace section
/// body (mirrors the private encoder in `message.rs`).
fn trace_section_body(ctx: &TraceContext) -> Vec<u8> {
    let mut w = Writer::with_capacity(26);
    w.put_u64((ctx.trace_id >> 64) as u64);
    w.put_u64(ctx.trace_id as u64);
    w.put_u64(ctx.parent_span);
    w.put_u8(ctx.hop_count);
    w.put_bool(ctx.sampled);
    w.into_bytes()
}

/// Asserts the zero-copy view of `bytes` agrees field-for-field with
/// the owned message `m` (panics on disagreement, like `prop_assert`).
fn assert_view_agrees(bytes: &[u8], m: &Message) {
    let v = MessageView::parse(bytes).expect("view parses v3 frame");
    assert_eq!(v.id, m.id);
    assert_eq!(v.correlation_id, m.correlation_id);
    assert_eq!(v.sender, m.sender.as_str());
    assert_eq!(v.timestamp_ms, m.timestamp_ms);
    assert_eq!(v.payload, m.payload.to_bytes().as_slice());
    assert_eq!(v.has_signature, m.signature.is_some());
    assert_eq!(v.has_token, m.token.is_some());
    assert_eq!(v.has_mac, m.mac.is_some());
    assert_eq!(v.trace, m.trace);
    assert_eq!(v.session, m.session);
    assert!(v.topic.eq_topic(&m.topic));
    assert_eq!(v.topic.to_topic().unwrap(), m.topic);
    assert_eq!(v.topic.hash64(), topic_hash(&m.topic));
    assert_eq!(v.trace_hop_offset().is_some(), m.trace.is_some());
    if let Some(off) = v.trace_hop_offset() {
        assert_eq!(bytes[off], m.trace.unwrap().hop_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Core agreement property: for any envelope, the zero-copy view
    /// and the full owned decode see the same message.
    #[test]
    fn view_agrees_with_owned_decode(m in arb_message()) {
        let bytes = m.to_bytes();
        prop_assert_eq!(&Message::from_bytes(&bytes).unwrap(), &m);
        assert_view_agrees(&bytes, &m);
    }

    /// Unknown trailing sections (extensions from newer peers) are
    /// skipped identically by both decoders, whether they precede or
    /// follow the trace section.
    #[test]
    fn unknown_trailing_sections_are_skipped_by_both_decoders(
        m in arb_message(),
        unknown in proptest::collection::vec(
            (
                // Tags 1 (trace) and 2 (session) are known; everything
                // above is an extension from a hypothetical newer peer.
                (3u64..256).prop_map(|t| t as u8),
                proptest::collection::vec(any::<u8>(), 0..40),
            ),
            1..4,
        ),
        trace_at in any::<usize>(),
        session_at in any::<usize>(),
    ) {
        let mut sections: Vec<(u8, Vec<u8>)> = unknown;
        if let Some(ctx) = &m.trace {
            let at = trace_at % (sections.len() + 1);
            sections.insert(at, (SECTION_TRACE, trace_section_body(ctx)));
        }
        if let Some(tag) = &m.session {
            let at = session_at % (sections.len() + 1);
            sections.insert(at, (SECTION_SESSION, tag.to_section_bytes()));
        }
        let bytes = encode_v3_with_sections(&m, &sections);
        // The owned decoder recovers the message exactly, ignoring
        // every unknown section.
        prop_assert_eq!(&Message::from_bytes(&bytes).unwrap(), &m);
        // The zero-copy view agrees on every routing-relevant field.
        assert_view_agrees(&bytes, &m);
    }

    /// A v2 frame decodes to the same message, and re-encoding it as
    /// v3 loses nothing: the upgrade path a broker takes when relaying
    /// traffic from an older peer.
    #[test]
    fn v2_to_v3_round_trip_preserves_every_field(m in arb_message()) {
        let v2 = m.to_v2_bytes();
        // v2 frames are below the view's version floor — routing must
        // fall back to the owned decoder.
        prop_assert!(MessageView::parse(&v2).is_err());
        let decoded = Message::from_bytes(&v2).unwrap();
        prop_assert_eq!(&decoded, &m);
        // Relay as v3: nothing dropped, and the view now applies.
        let v3 = decoded.to_bytes();
        prop_assert_eq!(&Message::from_bytes(&v3).unwrap(), &m);
        assert_view_agrees(&v3, &m);
    }
}
