//! Property-based tests for the session-key layer's wire surface:
//! the `SessionTag` trailing-section codec, skip-compatibility with
//! decoders that predate the section, rejection of truncated/tampered
//! tags, and the full RSA-sealed handshake (mint → sign+seal →
//! announce → open → install → tag → verify).

use nb_crypto::aes::KeySize;
use nb_crypto::cert::{CertificateAuthority, Validity};
use nb_crypto::session::{SessionKey, SessionKeyring, SessionVerdict};
use nb_crypto::{SealedEnvelope, Uuid};
use nb_wire::codec::{Decode, Encode};
use nb_wire::message::{Message, SessionTag, SESSION_TAG_LEN, SESSION_TAG_MAC_LEN};
use nb_wire::topic::Topic;
use nb_wire::{MessageView, Payload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

const NOW: u64 = 1_700_000_000_000;

fn arb_tag() -> impl Strategy<Value = SessionTag> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::array::uniform32(any::<u8>()),
    )
        .prop_map(|(key_id, seq, mac)| SessionTag { key_id, seq, mac })
}

fn sample_message(tag: SessionTag) -> Message {
    Message::new(
        11,
        Topic::parse("/Constrained/Traces/Session/Publish-Only/props").unwrap(),
        "entity:session-props",
        NOW,
        Payload::Blob {
            data: vec![1, 2, 3],
        },
    )
    .with_session(tag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The section body codec is the identity for any tag.
    #[test]
    fn section_codec_round_trip(tag in arb_tag()) {
        let body = tag.to_section_bytes();
        prop_assert_eq!(body.len(), SESSION_TAG_LEN);
        prop_assert_eq!(SessionTag::from_section_bytes(&body).unwrap(), tag);
    }

    /// A session-tagged envelope round-trips through both the owned
    /// decoder and the zero-copy view, and the signable region is
    /// untouched by the tag (it lives in the trailing sections).
    #[test]
    fn tagged_envelope_round_trip(tag in arb_tag()) {
        let m = sample_message(tag);
        let bytes = m.to_bytes();
        let back = Message::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(back.session, Some(tag));
        let v = MessageView::parse(&bytes).unwrap();
        prop_assert_eq!(v.session, Some(tag));
        // The view's signable parts concatenate to the owned
        // signable bytes — the zero-copy MAC contract.
        let [head, payload] = v.signable_parts();
        let mut concat = head.to_vec();
        concat.extend_from_slice(payload);
        prop_assert_eq!(concat, m.signable_bytes());

        // Stripping the tag leaves the signable region bit-identical:
        // a v2-era peer that drops the unknown section cannot break
        // end-to-end authentication.
        let mut stripped = m.clone();
        stripped.session = None;
        prop_assert_eq!(stripped.signable_bytes(), m.signable_bytes());
    }

    /// Truncating the section body anywhere is rejected; flipping any
    /// bit of the body yields either a decode error (never a panic) or
    /// a tag that differs from the original.
    #[test]
    fn truncated_or_tampered_tag_never_passes(
        tag in arb_tag(),
        cut in 0usize..SESSION_TAG_LEN,
        flip_at in 0usize..SESSION_TAG_LEN,
        flip_bit in 0u8..8,
    ) {
        let body = tag.to_section_bytes();
        prop_assert!(SessionTag::from_section_bytes(&body[..cut]).is_err());

        let mut tampered = body.clone();
        tampered[flip_at] ^= 1 << flip_bit;
        let back = SessionTag::from_section_bytes(&tampered).unwrap();
        prop_assert_ne!(back, tag);
    }

    /// A v1 re-encode (which predates trailing sections entirely)
    /// drops the tag but still decodes — the compat path for old
    /// peers; the message content survives.
    #[test]
    fn v1_peers_simply_lose_the_tag(tag in arb_tag()) {
        let m = sample_message(tag);
        let v1 = m.to_v1_bytes();
        let back = Message::from_bytes(&v1).unwrap();
        prop_assert_eq!(back.session, None);
        prop_assert_eq!(back.payload, m.payload);
        prop_assert_eq!(back.topic, m.topic);
    }
}

/// Shared handshake fixture: a CA, an entity credential (the signer)
/// and a broker keypair (the seal recipient). 512-bit keys keep the
/// proptest iterations fast.
struct Fixture {
    entity: nb_crypto::cert::Credential,
    broker: nb_crypto::cert::Credential,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5e55);
        let validity = Validity::starting_now(NOW - 1000, 1 << 40);
        let mut ca = CertificateAuthority::new("ca", 512, validity, &mut rng).unwrap();
        let entity = ca.issue("entity:handshake", validity, &mut rng).unwrap();
        let broker = ca.issue("broker:handshake", validity, &mut rng).unwrap();
        Fixture { entity, broker }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full handshake: the entity mints a key, seals it to the
    /// broker inside a signed `SessionKeyAnnounce`; the broker
    /// verifies the signature, opens the envelope, installs the key,
    /// and can then verify tags the entity issues — while a tampered
    /// announce or a tag under a different message is rejected.
    #[test]
    fn handshake_establishes_a_verifiable_session(
        seed in any::<u64>(),
        lifetime_ms in 1u64..1 << 40,
        max_messages in 1u64..64,
        body in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let broker_key = &fx.broker;
        let topic_id = Uuid::new_v4(&mut rng);
        let key = SessionKey::mint(topic_id, NOW, lifetime_ms, max_messages, &mut rng);

        // Entity side: seal + sign the announce.
        let sealed = SealedEnvelope::seal(
            &broker_key.certificate.public_key,
            &key.to_bytes(),
            KeySize::Aes192,
            &mut rng,
        )
        .unwrap();
        let mut announce = Message::new(
            1,
            Topic::parse("/Constrained/Traces/Session/Publish-Only/hs").unwrap(),
            "entity:handshake",
            NOW,
            Payload::SessionKeyAnnounce { sealed },
        );
        announce.sign(&fx.entity).unwrap();

        // Broker side: decode, verify the RSA signature, open, install.
        let decoded = Message::from_bytes(&announce.to_bytes()).unwrap();
        decoded
            .verify_signature(&fx.entity.certificate.public_key)
            .unwrap();
        let Payload::SessionKeyAnnounce { sealed } = &decoded.payload else {
            panic!("payload variant survived the codec");
        };
        let opened = sealed.open(&broker_key.private_key).unwrap();
        let installed = SessionKey::from_bytes(&opened).unwrap();
        prop_assert_eq!(&installed, &key);
        let ring = SessionKeyring::new();
        ring.install(installed);

        // Entity tags a frame; the broker verifies it zero-copy.
        let (seq, mac) = ring.tag(key.key_id, NOW, &[&body]).unwrap();
        prop_assert_eq!(
            ring.verify(key.key_id, seq, Some(&topic_id), NOW, &[&body], &mac),
            SessionVerdict::Verified
        );
        // Tampered body fails; wrong key id is unknown.
        let mut tampered = body.clone();
        tampered.push(0xff);
        prop_assert_eq!(
            ring.verify(key.key_id, seq, Some(&topic_id), NOW, &[&tampered], &mac),
            SessionVerdict::BadMac
        );
        prop_assert_eq!(
            ring.verify(key.key_id ^ 1, seq, Some(&topic_id), NOW, &[&body], &mac),
            SessionVerdict::UnknownKey
        );
    }

    /// A tampered sealed envelope never yields the minted key: either
    /// opening fails outright or the recovered bytes do not parse to
    /// the original key.
    #[test]
    fn tampered_announce_never_installs_the_key(
        seed in any::<u64>(),
        corrupt_at in any::<usize>(),
    ) {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let broker_key = &fx.broker;
        let key = SessionKey::mint(Uuid::new_v4(&mut rng), NOW, 60_000, 8, &mut rng);
        let mut sealed = SealedEnvelope::seal(
            &broker_key.certificate.public_key,
            &key.to_bytes(),
            KeySize::Aes192,
            &mut rng,
        )
        .unwrap();
        let at = corrupt_at % sealed.ciphertext.len();
        sealed.ciphertext[at] ^= 0x01;
        match sealed.open(&broker_key.private_key) {
            Err(_) => {}
            Ok(bytes) => match SessionKey::from_bytes(&bytes) {
                Err(_) => {}
                Ok(recovered) => prop_assert_ne!(recovered, key),
            },
        }
    }
}

#[test]
fn mac_len_matches_crypto_layer() {
    assert_eq!(SESSION_TAG_MAC_LEN, nb_crypto::SESSION_MAC_LEN);
}
