//! Wire-compatibility regression tests for the version-3 envelope:
//! the u32 payload length prefix must agree with the encoded payload,
//! the trailing-section block must round-trip trace contexts and
//! tolerate unknown sections from newer peers, and version-1/-2
//! frames must keep decoding byte-for-byte as older encoders
//! produced them.

use nb_telemetry::TraceContext;
use nb_wire::codec::{Decode, Encode, Reader, Writer};
use nb_wire::error::WireError;
use nb_wire::{Message, Payload, Topic};

const NOW: u64 = 1_700_000_000_000;

fn sample() -> Message {
    Message::new(
        11,
        Topic::parse("/Stat/Wire/Compat").unwrap(),
        "entity:compat",
        NOW,
        Payload::Ping {
            seq: 4,
            sent_at_ms: NOW,
        },
    )
}

fn ctx() -> TraceContext {
    TraceContext {
        trace_id: 0x0011_2233_4455_6677_8899_aabb_ccdd_eeff,
        parent_span: 42,
        hop_count: 2,
        sampled: true,
    }
}

#[test]
fn round_trip_without_trace() {
    let m = sample();
    let back = Message::from_bytes(&m.to_bytes()).unwrap();
    assert_eq!(back, m);
    assert_eq!(back.trace, None);
    assert!(!back.trace_sampled());
}

#[test]
fn round_trip_with_trace() {
    let m = sample().with_trace(ctx());
    let back = Message::from_bytes(&m.to_bytes()).unwrap();
    assert_eq!(back.trace, Some(ctx()));
    assert_eq!(back, m);
}

#[test]
fn v1_encoding_still_decodes() {
    // Regression: a pre-extension peer's frame (version byte 1, no
    // trailing-section block) must decode to the same message with no
    // trace context.
    let m = sample().with_trace(ctx());
    let legacy = m.to_v1_bytes();
    assert_eq!(legacy[0], 1, "legacy encoder must stamp version 1");
    let back = Message::from_bytes(&legacy).unwrap();
    assert_eq!(back.trace, None);
    let mut expect = m.clone();
    expect.trace = None;
    assert_eq!(back, expect);
}

#[test]
fn v2_encoding_still_decodes() {
    // A pre-v3 peer's frame (trailing sections but no payload length
    // prefix) must decode identically, trace included.
    let m = sample().with_trace(ctx());
    let legacy = m.to_v2_bytes();
    assert_eq!(legacy[0], 2, "legacy encoder must stamp version 2");
    assert_eq!(Message::from_bytes(&legacy).unwrap(), m);
}

#[test]
fn v1_and_v2_differ_only_in_version_and_sections() {
    // The v2 layout of a traceless message is the v1 layout plus a
    // zero section count — structural proof of backward compatibility.
    let m = sample();
    let v1 = m.to_v1_bytes();
    let v2 = m.to_v2_bytes();
    assert_eq!(v2[0], 2);
    assert_eq!(&v2[1..v2.len() - 1], &v1[1..]);
    assert_eq!(*v2.last().unwrap(), 0, "empty section block is one 0 byte");
}

#[test]
fn v3_is_v2_plus_payload_length_prefix() {
    // The v3 layout is the v2 layout with a big-endian u32 payload
    // length spliced in front of the payload — nothing else moves.
    let m = sample().with_trace(ctx());
    let v2 = m.to_v2_bytes();
    let v3 = m.to_bytes();
    assert_eq!(v3[0], 3);
    assert_eq!(v3.len(), v2.len() + 4);

    // Fixed-width prefix of the body: id + correlation id.
    let mut r = Reader::new(&v2[1..]);
    r.get_u64().unwrap();
    r.get_u64().unwrap();
    Topic::decode(&mut r).unwrap();
    r.get_str().unwrap();
    r.get_u64().unwrap();
    let payload_at = 1 + (v2.len() - 1 - r.remaining());
    Payload::decode(&mut r).unwrap();
    let payload_len = v2.len() - r.remaining() - payload_at;

    assert_eq!(&v3[1..payload_at], &v2[1..payload_at]);
    let declared = u32::from_be_bytes(v3[payload_at..payload_at + 4].try_into().unwrap());
    assert_eq!(declared as usize, payload_len);
    assert_eq!(&v3[payload_at + 4..], &v2[payload_at..]);
}

#[test]
fn corrupt_payload_length_is_rejected() {
    let m = sample();
    let v3 = m.to_bytes();
    // Find the length prefix the same way the decoder does.
    let mut r = Reader::new(&v3[1..]);
    r.get_u64().unwrap();
    r.get_u64().unwrap();
    Topic::decode(&mut r).unwrap();
    r.get_str().unwrap();
    r.get_u64().unwrap();
    let at = 1 + (v3.len() - 1 - r.remaining());
    let declared = u32::from_be_bytes(v3[at..at + 4].try_into().unwrap());

    let mut longer = v3.clone();
    longer[at..at + 4].copy_from_slice(&(declared + 1).to_be_bytes());
    assert!(Message::from_bytes(&longer).is_err());

    let mut shorter = v3.clone();
    shorter[at..at + 4].copy_from_slice(&(declared - 1).to_be_bytes());
    assert!(Message::from_bytes(&shorter).is_err());
}

#[test]
fn unknown_trailing_sections_are_skipped() {
    // A newer peer appends a section we do not understand; we must
    // skip it and still pick up the trace section that follows.
    let m = sample();
    let mut w = Writer::new();
    m.encode(&mut w);
    let mut bytes = w.into_bytes();
    let base = bytes.len() - 1; // strip the encoder's 0 section count
    bytes.truncate(base);

    let mut tail = Writer::new();
    tail.put_varint(2);
    tail.put_u8(200); // unknown tag
    tail.put_bytes(b"from-the-future");
    tail.put_u8(nb_wire::message::SECTION_TRACE);
    let mut body = Writer::new();
    let c = ctx();
    body.put_u64((c.trace_id >> 64) as u64);
    body.put_u64(c.trace_id as u64);
    body.put_u64(c.parent_span);
    body.put_u8(c.hop_count);
    body.put_bool(c.sampled);
    tail.put_bytes(&body.into_bytes());
    bytes.extend_from_slice(&tail.into_bytes());

    let back = Message::from_bytes(&bytes).unwrap();
    assert_eq!(back.trace, Some(ctx()));
}

#[test]
fn future_versions_are_rejected() {
    let mut bytes = sample().to_bytes();
    bytes[0] = 4;
    match Message::from_bytes(&bytes) {
        Err(WireError::BadVersion(4)) => {}
        other => panic!("expected BadVersion(4), got {other:?}"),
    }
}

#[test]
fn truncated_section_block_is_an_error() {
    let m = sample().with_trace(ctx());
    let bytes = m.to_bytes();
    // Chop mid-section: count says 1 but the body is gone.
    let cut = bytes.len() - 10;
    assert!(Message::from_bytes(&bytes[..cut]).is_err());
    // And a Reader that stops before the section block reports
    // trailing bytes through from_bytes' expect_end.
    let mut r = Reader::new(&bytes);
    let parsed = Message::decode(&mut r).unwrap();
    assert_eq!(parsed.trace, Some(ctx()));
    r.expect_end("message").unwrap();
}
