//! Property-based tests: topic grammar, constrained-topic defaulting,
//! and codec round-trips under arbitrary inputs.

use nb_wire::codec::{Decode, Encode, Reader};
use nb_wire::constrained::ConstrainedTopic;
use nb_wire::topic::Topic;
use nb_wire::trace::{EntityState, LoadInformation, NetworkMetrics, TraceKind};
use proptest::prelude::*;

/// Segments avoiding '/' and the grammar's reserved keywords.
fn arb_segment() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_-]{1,12}".prop_filter("reserved", |s| {
        !matches!(
            s.as_str(),
            "Broker"
                | "Publish"
                | "Subscribe"
                | "PublishSubscribe"
                | "Suppress"
                | "Limited"
                | "Disseminate"
        )
    })
}

fn arb_topic() -> impl Strategy<Value = Topic> {
    proptest::collection::vec(arb_segment(), 1..6)
        .prop_map(|segs| Topic::from_segments(segs).unwrap())
}

fn arb_state() -> impl Strategy<Value = EntityState> {
    prop_oneof![
        Just(EntityState::Initializing),
        Just(EntityState::Recovering),
        Just(EntityState::Ready),
        Just(EntityState::Shutdown),
    ]
}

fn arb_trace_kind() -> impl Strategy<Value = TraceKind> {
    prop_oneof![
        (proptest::option::of(arb_state()), arb_state())
            .prop_map(|(from, to)| TraceKind::StateTransition { from, to }),
        Just(TraceKind::FailureSuspicion),
        Just(TraceKind::Failed),
        Just(TraceKind::Disconnect),
        Just(TraceKind::GaugeInterest),
        Just(TraceKind::Join),
        Just(TraceKind::RevertingToSilentMode),
        Just(TraceKind::AllsWell),
        (any::<f64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(cpu, used, total, wl)| TraceKind::LoadInformation(LoadInformation {
                cpu_percent: if cpu.is_nan() { 0.0 } else { cpu },
                memory_used_bytes: used,
                memory_total_bytes: total,
                workload: wl,
            })
        ),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(a, b, c, d)| TraceKind::NetworkMetrics(NetworkMetrics {
                loss_rate: a as f64 / u32::MAX as f64,
                transit_delay_ms: b as f64,
                bandwidth_bps: c as f64,
                out_of_order_rate: d as f64 / u32::MAX as f64,
            })
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn topic_parse_display_round_trip(t in arb_topic()) {
        let s = t.to_string();
        prop_assert_eq!(Topic::parse(&s).unwrap(), t);
    }

    #[test]
    fn topic_codec_round_trip(t in arb_topic()) {
        prop_assert_eq!(Topic::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn topic_is_prefix_of_self_and_extensions(t in arb_topic(), ext in arb_segment()) {
        prop_assert!(t.is_prefix_of(&t));
        let extended = t.join(ext).unwrap();
        prop_assert!(t.is_prefix_of(&extended));
        prop_assert!(!extended.is_prefix_of(&t));
    }

    #[test]
    fn exact_filter_matches_only_itself(a in arb_topic(), b in arb_topic()) {
        prop_assert!(a.matches_filter(&a));
        if a != b {
            // Without wildcards, distinct topics never cross-match.
            prop_assert!(!a.matches_filter(&b) || a == b);
        }
    }

    #[test]
    fn hash_wildcard_matches_all_extensions(t in arb_topic(), ext in arb_segment()) {
        let filter = t.join("#").unwrap();
        prop_assert!(t.join(ext.clone()).unwrap().matches_filter(&filter));
        let deep = format!("{ext}/deeper");
        prop_assert!(t.join(deep).unwrap().matches_filter(&filter));
    }

    #[test]
    fn constrained_canonicalization_is_idempotent(suffixes in proptest::collection::vec(arb_segment(), 0..4)) {
        let mut segs = vec!["Constrained".to_string(), "Traces".to_string()];
        segs.extend(suffixes);
        let topic = Topic::from_segments(segs).unwrap();
        if let Some(c) = ConstrainedTopic::parse(&topic).unwrap() {
            let canon = c.to_topic();
            let reparsed = ConstrainedTopic::parse(&canon).unwrap().unwrap();
            prop_assert_eq!(&reparsed, &c);
            // Canonical form is a fixed point.
            prop_assert_eq!(reparsed.to_topic(), canon);
        }
    }

    #[test]
    fn trace_kind_codec_round_trip(kind in arb_trace_kind()) {
        let bytes = kind.to_bytes();
        prop_assert_eq!(TraceKind::from_bytes(&bytes).unwrap(), kind);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any byte soup must produce Ok or Err, never a panic.
        let mut r = Reader::new(&bytes);
        let _ = nb_wire::Message::decode(&mut r);
        let _ = TraceKind::from_bytes(&bytes);
        let _ = Topic::from_bytes(&bytes);
    }
}
