//! Authorization-token accounting on the global metrics registry.
//!
//! Tokens are minted and verified at several layers (entities,
//! brokers, trackers), so the counts live on
//! [`nb_metrics::global`] rather than on any one component. Names are
//! catalogued in `docs/OBSERVABILITY.md` under the `token.*` family.

use std::sync::LazyLock;

use nb_metrics::Counter;

macro_rules! token_counter {
    ($static_name:ident, $metric:literal) => {
        pub(crate) static $static_name: LazyLock<Counter> =
            LazyLock::new(|| nb_metrics::global().counter($metric));
    };
}

token_counter!(TOKENS_MINTED, "token.minted");
token_counter!(TOKENS_VERIFIED, "token.verify.ok");
token_counter!(TOKENS_REJECTED, "token.verify.rejected");
