//! Zero-copy frame views for the broker data plane.
//!
//! The broker's hot path routes far more frames than it originates,
//! and most of a frame — the payload body, signatures, tokens — is
//! opaque to routing. [`MessageView`] parses *only* the fields routing
//! needs (topic, sender, payload tag, auth presence, trace context)
//! directly out of a borrowed byte slice, allocating nothing, so the
//! broker can match and forward the original frame bytes untouched.
//!
//! Views require the version-3 envelope (whose payload is
//! u32-length-prefixed, see [`crate::message`]); frames from older
//! peers fail to parse here and take the full-decode slow path.

use crate::codec::Reader;
use crate::error::WireError;
use crate::message::{SessionTag, SECTION_SESSION, SECTION_TRACE, WIRE_VERSION};
use crate::topic::Topic;
use crate::Result;
use nb_telemetry::TraceContext;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Segment separator folded into topic hashes. `0xff` never occurs in
/// valid UTF-8, so no two distinct segment lists collide by
/// concatenation (e.g. `/AB/C` vs `/A/BC`).
const SEG_SEP: u8 = 0xff;

/// Hashes a [`Topic`] with the same segment-wise FNV-1a used by
/// [`TopicView::hash64`], so owned topics and borrowed views index
/// into the same hash-keyed structures (e.g. the broker route cache).
pub fn topic_hash(topic: &Topic) -> u64 {
    let mut h = FNV_OFFSET;
    for seg in topic.segments() {
        for &b in seg.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        h = (h ^ u64::from(SEG_SEP)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A borrowed, segment-addressable view of an encoded topic.
///
/// Segments are exposed as raw byte slices: matching and hashing
/// compare bytes, so no UTF-8 validation or allocation happens on the
/// hot path. Use [`TopicView::to_topic`] for a fully validated owned
/// topic when leaving the fast path.
#[derive(Debug, Clone, Copy)]
pub struct TopicView<'a> {
    /// Encoded segment list (varint length + bytes per segment),
    /// without the leading count varint.
    body: &'a [u8],
    /// Number of segments in `body`.
    count: usize,
}

impl<'a> TopicView<'a> {
    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.count
    }

    /// Iterates the raw segment byte slices.
    pub fn segments(&self) -> SegmentIter<'a> {
        SegmentIter {
            buf: self.body,
            remaining: self.count,
        }
    }

    /// Segment-wise FNV-1a hash, identical to [`topic_hash`] over the
    /// equivalent owned [`Topic`].
    pub fn hash64(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for seg in self.segments() {
            for &b in seg {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            h = (h ^ u64::from(SEG_SEP)).wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Whether this view denotes exactly `topic` (segment-wise byte
    /// equality). Used to resolve hash collisions without allocating.
    pub fn eq_topic(&self, topic: &Topic) -> bool {
        self.count == topic.len()
            && self
                .segments()
                .zip(topic.segments())
                .all(|(a, b)| a == b.as_bytes())
    }

    /// Subscription matching against an owned filter, mirroring
    /// [`Topic::matches_filter`]: `*` matches any single segment, a
    /// trailing `#` matches any remaining suffix.
    pub fn matches_filter(&self, filter: &Topic) -> bool {
        let mut t = self.segments();
        let fsegs = filter.segments();
        for (i, f) in fsegs.iter().enumerate() {
            if f == "#" {
                return i == fsegs.len() - 1;
            }
            match t.next() {
                Some(seg) if f == "*" || f.as_bytes() == seg => continue,
                _ => return false,
            }
        }
        t.next().is_none()
    }

    /// Materializes a fully validated owned [`Topic`] (allocates; slow
    /// path only).
    pub fn to_topic(&self) -> Result<Topic> {
        let mut segments = Vec::with_capacity(self.count);
        for seg in self.segments() {
            segments.push(
                std::str::from_utf8(seg)
                    .map_err(|_| WireError::BadUtf8("topic segment"))?
                    .to_string(),
            );
        }
        Topic::from_segments(segments)
    }
}

/// Iterator over the raw byte segments of a [`TopicView`].
///
/// The segment structure was bounds-checked when the view was parsed,
/// so iteration cannot fail; a (structurally impossible) malformed
/// buffer simply ends the iteration early.
pub struct SegmentIter<'a> {
    buf: &'a [u8],
    remaining: usize,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Inline LEB128 read; structure already validated at parse.
        let mut len = 0usize;
        let mut shift = 0u32;
        let mut used = 0usize;
        loop {
            let byte = *self.buf.get(used)?;
            used += 1;
            len |= ((byte & 0x7f) as usize) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let seg = self.buf.get(used..used + len)?;
        self.buf = &self.buf[used + len..];
        Some(seg)
    }
}

/// A zero-copy view of an encoded version-3 [`crate::Message`] frame.
///
/// Exposes exactly what routing needs; the payload body and
/// authentication material stay as opaque borrowed slices. Construct
/// with [`MessageView::parse`]; any frame it rejects (older wire
/// version, malformed structure) must be routed through the owned
/// [`crate::Message`] decoder instead.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    /// Unique (per sender) message id.
    pub id: u64,
    /// Correlates responses to requests (0 = none).
    pub correlation_id: u64,
    /// Borrowed view of the routing topic.
    pub topic: TopicView<'a>,
    /// Sender identifier.
    pub sender: &'a str,
    /// Send timestamp, ms since epoch.
    pub timestamp_ms: u64,
    /// Leading tag byte of the payload (the [`crate::Payload`] variant
    /// discriminant) — enough to split control traffic from data.
    pub payload_tag: u8,
    /// The complete encoded payload, undecoded.
    pub payload: &'a [u8],
    /// Whether an RSA signature is attached.
    pub has_signature: bool,
    /// Whether an authorization token is attached.
    pub has_token: bool,
    /// Whether an HMAC is attached.
    pub has_mac: bool,
    /// Decoded causal trace context, if the frame carries one (the
    /// trace section is small and fixed-width; decoding it allocates
    /// nothing).
    pub trace: Option<TraceContext>,
    /// Decoded session authentication tag, if the frame carries one
    /// (fixed-width; decoding allocates nothing).
    pub session: Option<SessionTag>,
    /// Absolute offset of the trace hop-count byte within the frame.
    trace_hop_offset: Option<usize>,
    /// The envelope head covered by signatures/MACs: everything from
    /// just after the version byte up to the payload length prefix.
    signable_head: &'a [u8],
}

impl<'a> MessageView<'a> {
    /// Parses the routing-relevant fields of a version-3 frame without
    /// copying. Rejects other versions with
    /// [`WireError::BadVersion`] so callers fall back to the full
    /// decoder ([`Decode::from_bytes`][crate::codec::Decode] on
    /// [`crate::Message`]).
    pub fn parse(frame: &'a [u8]) -> Result<Self> {
        let mut r = Reader::new(frame);
        let version = r.get_u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let id = r.get_u64()?;
        let correlation_id = r.get_u64()?;

        let count = r.get_varint()? as usize;
        if count == 0 {
            return Err(WireError::InvalidTopic("empty topic".into()));
        }
        let body_start = frame.len() - r.remaining();
        for _ in 0..count {
            r.get_bytes_ref()?;
        }
        let body_end = frame.len() - r.remaining();
        let topic = TopicView {
            body: &frame[body_start..body_end],
            count,
        };

        let sender = r.get_str_ref()?;
        let timestamp_ms = r.get_u64()?;

        // Everything between the version byte and the payload length
        // prefix is part of the signable region (the payload itself is
        // the other part — see `signable_parts`).
        let signable_head = &frame[1..frame.len() - r.remaining()];

        let payload_len = r.get_u32()? as usize;
        if payload_len > crate::codec::MAX_CHUNK_LEN {
            return Err(WireError::LengthOverflow("payload"));
        }
        let payload = r.get_exact(payload_len, "payload body")?;
        let payload_tag = *payload.first().ok_or(WireError::Truncated("payload tag"))?;

        let has_signature = skip_option_bytes(&mut r)?;
        let has_token = skip_option_token(&mut r)?;
        let has_mac = skip_option_bytes(&mut r)?;

        let mut trace = None;
        let mut session = None;
        let mut trace_hop_offset = None;
        let sections = r.get_varint()?;
        for _ in 0..sections {
            let tag = r.get_u8()?;
            let body = r.get_bytes_ref()?;
            if tag == SECTION_SESSION && session.is_none() {
                session = Some(SessionTag::from_section_bytes(body)?);
            } else if tag == SECTION_TRACE && trace.is_none() {
                let body_abs = frame.len() - r.remaining() - body.len();
                let mut tr = Reader::new(body);
                let hi = tr.get_u64()?;
                let lo = tr.get_u64()?;
                let parent_span = tr.get_u64()?;
                let hop_count = tr.get_u8()?;
                let sampled = tr.get_bool()?;
                trace = Some(TraceContext {
                    trace_id: (u128::from(hi) << 64) | u128::from(lo),
                    parent_span,
                    hop_count,
                    sampled,
                });
                // hi + lo + parent_span precede the hop byte.
                trace_hop_offset = Some(body_abs + 24);
            }
        }
        r.expect_end("message view")?;

        Ok(MessageView {
            id,
            correlation_id,
            topic,
            sender,
            timestamp_ms,
            payload_tag,
            payload,
            has_signature,
            has_token,
            has_mac,
            trace,
            session,
            trace_hop_offset,
            signable_head,
        })
    }

    /// The two borrowed slices whose concatenation equals
    /// [`crate::Message::signable_bytes`] for this frame: the envelope
    /// head (id through timestamp) and the payload body, skipping the
    /// v3 payload length prefix between them. Lets a verifier MAC the
    /// signed region with zero copies (feed both parts to
    /// `nb_crypto::hmac::hmac_parts`).
    pub fn signable_parts(&self) -> [&'a [u8]; 2] {
        [self.signable_head, self.payload]
    }

    /// Whether this frame carries a head-sampled trace context.
    pub fn trace_sampled(&self) -> bool {
        self.trace.is_some_and(|t| t.sampled)
    }

    /// Absolute byte offset of the trace hop counter within the
    /// original frame, if a trace section is present. A broker
    /// forwarding the frame increments `frame[offset]` in place
    /// instead of re-encoding the envelope.
    pub fn trace_hop_offset(&self) -> Option<usize> {
        self.trace_hop_offset
    }
}

/// Skips an `Option<bytes>` field, returning its presence.
fn skip_option_bytes(r: &mut Reader<'_>) -> Result<bool> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => {
            r.get_bytes_ref()?;
            Ok(true)
        }
        tag => Err(WireError::UnknownTag {
            what: "option",
            tag,
        }),
    }
}

/// Skips an `Option<AuthorizationToken>` field, returning its
/// presence. Mirrors the token encode layout: trace-topic UUID,
/// delegate key bytes, rights byte, validity window, signature bytes.
fn skip_option_token(r: &mut Reader<'_>) -> Result<bool> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => {
            r.get_exact(16, "token uuid")?;
            r.get_bytes_ref()?; // delegate key
            r.get_exact(1 + 8 + 8, "token rights/validity")?;
            r.get_bytes_ref()?; // signature
            Ok(true)
        }
        tag => Err(WireError::UnknownTag {
            what: "option",
            tag,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decode, Encode};
    use crate::message::Message;
    use crate::payload::Payload;
    use crate::token::{AuthorizationToken, Rights};
    use nb_crypto::Uuid;

    const NOW: u64 = 1_700_000_000_000;

    fn sample() -> Message {
        Message::new(
            77,
            Topic::parse("/Constrained/Traces/Broker/Publish-Only/abc").unwrap(),
            "entity:view-test",
            NOW,
            Payload::Ping {
                seq: 9,
                sent_at_ms: NOW,
            },
        )
    }

    fn ctx() -> TraceContext {
        TraceContext {
            trace_id: 0x1111_2222_3333_4444_5555_6666_7777_8888,
            parent_span: 17,
            hop_count: 3,
            sampled: true,
        }
    }

    fn token() -> AuthorizationToken {
        use nb_crypto::bigint::BigUint;
        use nb_crypto::rsa::RsaPublicKey;
        AuthorizationToken {
            trace_topic: Uuid::from_bytes([7; 16]),
            delegate_key: RsaPublicKey::new(BigUint::from_u64(3233), BigUint::from_u64(17)),
            rights: Rights::Publish,
            valid_from_ms: NOW,
            valid_until_ms: NOW + 1000,
            signature: vec![9; 32],
        }
    }

    #[test]
    fn view_agrees_with_full_decode() {
        let mut m = sample().correlated(5).with_trace(ctx());
        m.signature = Some(vec![4; 64]);
        m.mac = Some(vec![5; 32]);
        let m = m.with_token(token());
        let bytes = m.to_bytes();
        let v = MessageView::parse(&bytes).unwrap();
        assert_eq!(v.id, m.id);
        assert_eq!(v.correlation_id, 5);
        assert_eq!(v.sender, m.sender);
        assert_eq!(v.timestamp_ms, m.timestamp_ms);
        assert_eq!(v.payload_tag, 30); // Ping
        assert!(v.has_signature && v.has_token && v.has_mac);
        assert_eq!(v.trace, Some(ctx()));
        assert!(v.topic.eq_topic(&m.topic));
        assert_eq!(v.topic.to_topic().unwrap(), m.topic);
        // The payload slice is the exact encoding of the payload.
        assert_eq!(v.payload, m.payload.to_bytes().as_slice());
    }

    #[test]
    fn view_rejects_legacy_versions() {
        let m = sample();
        assert!(matches!(
            MessageView::parse(&m.to_v1_bytes()),
            Err(WireError::BadVersion(1))
        ));
        assert!(matches!(
            MessageView::parse(&m.to_v2_bytes()),
            Err(WireError::BadVersion(2))
        ));
    }

    #[test]
    fn topic_hash_agrees_between_view_and_owned() {
        for s in [
            "/A",
            "/A/B/C",
            "/Constrained/Traces/Broker/Publish-Only/abc",
            "/Availability/Traces/entity-1",
        ] {
            let t = Topic::parse(s).unwrap();
            let m = Message::new(1, t.clone(), "s", NOW, Payload::Ack);
            let bytes = m.to_bytes();
            let v = MessageView::parse(&bytes).unwrap();
            assert_eq!(v.topic.hash64(), topic_hash(&t), "{s}");
        }
    }

    #[test]
    fn concatenation_does_not_collide() {
        assert_ne!(
            topic_hash(&Topic::parse("/AB/C").unwrap()),
            topic_hash(&Topic::parse("/A/BC").unwrap())
        );
    }

    #[test]
    fn view_filter_matching_mirrors_owned() {
        let m = sample();
        let bytes = m.to_bytes();
        let v = MessageView::parse(&bytes).unwrap();
        for (filter, expect) in [
            ("/Constrained/Traces/Broker/Publish-Only/abc", true),
            ("/Constrained/Traces/Broker/Publish-Only/xyz", false),
            ("/Constrained/*/Broker/*/abc", true),
            ("/Constrained/#", true),
            ("/Constrained/Traces", false),
            ("/#", true),
        ] {
            let f = Topic::parse(filter).unwrap();
            assert_eq!(v.topic.matches_filter(&f), expect, "{filter}");
            assert_eq!(m.topic.matches_filter(&f), expect, "{filter} (owned)");
        }
    }

    #[test]
    fn hop_offset_patches_in_place() {
        let m = sample().with_trace(ctx());
        let mut bytes = m.to_bytes();
        let off = MessageView::parse(&bytes)
            .unwrap()
            .trace_hop_offset()
            .unwrap();
        bytes[off] += 1;
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(back.trace.unwrap().hop_count, ctx().hop_count + 1);
        // Everything else untouched.
        let mut expect = m;
        expect.trace = Some(TraceContext {
            hop_count: ctx().hop_count + 1,
            ..ctx()
        });
        assert_eq!(back, expect);
    }

    #[test]
    fn traceless_frames_have_no_hop_offset() {
        let bytes = sample().to_bytes();
        let v = MessageView::parse(&bytes).unwrap();
        assert_eq!(v.trace, None);
        assert_eq!(v.trace_hop_offset(), None);
        assert!(!v.trace_sampled());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = sample().with_trace(ctx()).to_bytes();
        for cut in 1..bytes.len() {
            assert!(MessageView::parse(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn segment_iterator_yields_raw_segments() {
        let m = sample();
        let bytes = m.to_bytes();
        let v = MessageView::parse(&bytes).unwrap();
        let segs: Vec<&[u8]> = v.topic.segments().collect();
        assert_eq!(segs.len(), v.topic.segment_count());
        assert_eq!(segs[0], b"Constrained");
        assert_eq!(segs[4], b"abc");
    }
}
