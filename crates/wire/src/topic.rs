//! Topic model for the publish/subscribe substrate.
//!
//! Topics are `/`-separated strings (e.g.
//! `StockQuotes/Companies/Adobe`, §2.1). The tracing scheme derives
//! all its topics from a TDN-issued trace-topic UUID; helpers for
//! those derivative topics (Table 2) live in [`crate::trace`].

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::WireError;
use crate::Result;
use std::fmt;
use std::str::FromStr;

/// A publish/subscribe topic: a non-empty sequence of non-empty
/// segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Topic {
    segments: Vec<String>,
}

impl Topic {
    /// Builds a topic from segments, validating each one.
    pub fn from_segments<I, S>(segments: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        if segments.is_empty() {
            return Err(WireError::InvalidTopic("empty topic".into()));
        }
        for seg in &segments {
            validate_segment(seg)?;
        }
        Ok(Topic { segments })
    }

    /// Parses `"/A/B/C"` or `"A/B/C"` (leading slash optional).
    pub fn parse(s: &str) -> Result<Self> {
        let trimmed = s.strip_prefix('/').unwrap_or(s);
        if trimmed.is_empty() {
            return Err(WireError::InvalidTopic(s.to_string()));
        }
        Self::from_segments(trimmed.split('/'))
    }

    /// The topic's segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Always false (topics are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns a new topic with `suffix` segments appended.
    pub fn join<S: Into<String>>(&self, suffix: S) -> Result<Topic> {
        let suffix = suffix.into();
        let mut segments = self.segments.clone();
        for seg in suffix.split('/').filter(|s| !s.is_empty()) {
            validate_segment(seg)?;
            segments.push(seg.to_string());
        }
        Ok(Topic { segments })
    }

    /// Whether `self` is a prefix of `other` (segment-wise).
    pub fn is_prefix_of(&self, other: &Topic) -> bool {
        other.segments.len() >= self.segments.len()
            && self
                .segments
                .iter()
                .zip(other.segments.iter())
                .all(|(a, b)| a == b)
    }

    /// Subscription matching: exact segment equality, with `*`
    /// matching any single segment and a trailing `#` matching any
    /// remaining suffix (MQTT-style, used only by subscriptions).
    pub fn matches_filter(&self, filter: &Topic) -> bool {
        let mut t = self.segments.iter();
        for (i, f) in filter.segments.iter().enumerate() {
            if f == "#" {
                // `#` must be last; it absorbs everything remaining.
                return i == filter.segments.len() - 1;
            }
            match t.next() {
                Some(seg) if f == "*" || f == seg => continue,
                _ => return false,
            }
        }
        t.next().is_none()
    }
}

fn validate_segment(seg: &str) -> Result<()> {
    if seg.is_empty() {
        return Err(WireError::InvalidTopic("empty segment".into()));
    }
    if seg.contains('/') {
        return Err(WireError::InvalidTopic(format!(
            "segment contains '/': {seg}"
        )));
    }
    Ok(())
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}", self.segments.join("/"))
    }
}

impl FromStr for Topic {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self> {
        Topic::parse(s)
    }
}

impl Encode for Topic {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.segments, |w, s| w.put_str(s));
    }
}

impl Decode for Topic {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let segments = r.get_seq(|r| r.get_str())?;
        Topic::from_segments(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "/StockQuotes/Companies/Adobe",
            "/Availability/Traces/entity-1",
            "/Constrained/Traces/Broker/Publish-Only/abc/ChangeNotifications",
        ] {
            assert_eq!(t(s).to_string(), s);
        }
    }

    #[test]
    fn leading_slash_is_optional() {
        assert_eq!(t("A/B/C"), t("/A/B/C"));
    }

    #[test]
    fn rejects_degenerate_topics() {
        assert!(Topic::parse("").is_err());
        assert!(Topic::parse("/").is_err());
        assert!(Topic::parse("//").is_err());
        assert!(Topic::parse("/A//B").is_err());
        assert!(Topic::from_segments(Vec::<String>::new()).is_err());
        assert!(Topic::from_segments(["a/b"]).is_err());
    }

    #[test]
    fn join_appends_segments() {
        let base = t("/Constrained/Traces");
        assert_eq!(base.join("Broker/Publish-Only").unwrap(), t("/Constrained/Traces/Broker/Publish-Only"));
        assert_eq!(base.join("X").unwrap().len(), 3);
    }

    #[test]
    fn prefix_relation() {
        assert!(t("/A/B").is_prefix_of(&t("/A/B/C")));
        assert!(t("/A/B").is_prefix_of(&t("/A/B")));
        assert!(!t("/A/B/C").is_prefix_of(&t("/A/B")));
        assert!(!t("/A/X").is_prefix_of(&t("/A/B/C")));
    }

    #[test]
    fn exact_matching() {
        assert!(t("/A/B/C").matches_filter(&t("/A/B/C")));
        assert!(!t("/A/B/C").matches_filter(&t("/A/B")));
        assert!(!t("/A/B").matches_filter(&t("/A/B/C")));
    }

    #[test]
    fn single_segment_wildcard() {
        assert!(t("/A/B/C").matches_filter(&t("/A/*/C")));
        assert!(t("/A/B/C").matches_filter(&t("/*/*/*")));
        assert!(!t("/A/B/C").matches_filter(&t("/A/*")));
        assert!(!t("/A/B").matches_filter(&t("/A/*/C")));
    }

    #[test]
    fn multi_level_wildcard() {
        assert!(t("/A/B/C").matches_filter(&t("/A/#")));
        assert!(t("/A").matches_filter(&t("/#")));
        assert!(!t("/X/B").matches_filter(&t("/A/#")));
        // `#` not in final position never matches.
        assert!(!t("/A/B/C").matches_filter(&t("/#/C")));
    }

    #[test]
    fn codec_round_trip() {
        let topic = t("/Constrained/Traces/Broker/Subscribe-Only/Registration");
        let bytes = topic.to_bytes();
        assert_eq!(Topic::from_bytes(&bytes).unwrap(), topic);
    }

    #[test]
    fn ordering_is_lexicographic_by_segments() {
        assert!(t("/A/B") < t("/A/C"));
        assert!(t("/A") < t("/A/B"));
    }
}
