//! Authorization tokens (paper §4.3).
//!
//! A traced entity delegates the right to publish its traces to its
//! hosting broker by minting a token over a **randomly generated key
//! pair** (so the token does not reveal which broker the entity is
//! attached to — including the broker's own credential would leak
//! that). The token carries the trace topic, the delegate public key,
//! the granted rights and a validity window, all signed by the topic
//! owner. Every broker-generated trace message must carry a valid
//! token; routing brokers discard messages whose token is missing,
//! expired, or not signed by the topic owner.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::WireError;
use crate::instrument;
use crate::Result;
use nb_crypto::cert::Credential;
use nb_crypto::digest::DigestAlgorithm;
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::Uuid;

/// Rights grantable by an authorization token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rights {
    /// The delegate may publish traces for the topic (brokers get
    /// this).
    Publish,
    /// The delegate may subscribe to traces for the topic.
    Subscribe,
}

impl Rights {
    /// Stable wire tag.
    pub fn wire_id(self) -> u8 {
        match self {
            Rights::Publish => 1,
            Rights::Subscribe => 2,
        }
    }

    /// Inverse of [`Rights::wire_id`].
    pub fn from_wire_id(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(Rights::Publish),
            2 => Ok(Rights::Subscribe),
            tag => Err(WireError::UnknownTag {
                what: "Rights",
                tag,
            }),
        }
    }
}

/// Default tolerated clock skew when validating token windows. The
/// paper assumes NTP keeps clocks "within 30-100 milliseconds"; we
/// allow a conservative 100 ms.
pub const DEFAULT_SKEW_MS: u64 = 100;

/// A signed delegation token (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct AuthorizationToken {
    /// The trace topic the delegation covers.
    pub trace_topic: Uuid,
    /// The randomly generated public key whose private half the
    /// delegate (broker) holds.
    pub delegate_key: RsaPublicKey,
    /// Rights granted to the delegate.
    pub rights: Rights,
    /// Validity window start (ms since epoch).
    pub valid_from_ms: u64,
    /// Validity window end (ms since epoch). Entities keep this
    /// "short enough to correspond to its expected presence within
    /// the system".
    pub valid_until_ms: u64,
    /// Topic-owner signature over the TBS bytes.
    pub signature: Vec<u8>,
}

impl AuthorizationToken {
    /// Mints a token: the topic owner signs the delegation.
    pub fn issue(
        owner: &Credential,
        trace_topic: Uuid,
        delegate_key: RsaPublicKey,
        rights: Rights,
        valid_from_ms: u64,
        valid_until_ms: u64,
    ) -> Result<Self> {
        let mut token = AuthorizationToken {
            trace_topic,
            delegate_key,
            rights,
            valid_from_ms,
            valid_until_ms,
            signature: Vec::new(),
        };
        token.signature = owner
            .private_key
            .sign(DigestAlgorithm::Sha1, &token.tbs_bytes())?;
        instrument::TOKENS_MINTED.inc();
        Ok(token)
    }

    /// Canonical signed content.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_uuid(&self.trace_topic);
        w.put_bytes(&self.delegate_key.to_bytes());
        w.put_u8(self.rights.wire_id());
        w.put_u64(self.valid_from_ms);
        w.put_u64(self.valid_until_ms);
        w.into_bytes()
    }

    /// Full verification: owner signature, rights, and validity window
    /// (with `skew_ms` tolerance on both edges).
    pub fn verify(
        &self,
        owner_key: &RsaPublicKey,
        expected_rights: Rights,
        now_ms: u64,
        skew_ms: u64,
    ) -> Result<()> {
        let outcome = self.verify_inner(owner_key, expected_rights, now_ms, skew_ms);
        match &outcome {
            Ok(()) => instrument::TOKENS_VERIFIED.inc(),
            Err(_) => instrument::TOKENS_REJECTED.inc(),
        }
        outcome
    }

    fn verify_inner(
        &self,
        owner_key: &RsaPublicKey,
        expected_rights: Rights,
        now_ms: u64,
        skew_ms: u64,
    ) -> Result<()> {
        if self.rights != expected_rights {
            return Err(WireError::Crypto(
                nb_crypto::CryptoError::CertificateInvalid("token grants different rights"),
            ));
        }
        if now_ms + skew_ms < self.valid_from_ms {
            return Err(WireError::Crypto(
                nb_crypto::CryptoError::CertificateInvalid("token not yet valid"),
            ));
        }
        if now_ms > self.valid_until_ms.saturating_add(skew_ms) {
            return Err(WireError::Crypto(
                nb_crypto::CryptoError::CertificateInvalid("token expired"),
            ));
        }
        owner_key
            .verify(DigestAlgorithm::Sha1, &self.tbs_bytes(), &self.signature)
            .map_err(WireError::Crypto)
    }

    /// Whether the window has lapsed at `now_ms` (no signature check).
    pub fn is_expired(&self, now_ms: u64) -> bool {
        now_ms > self.valid_until_ms
    }

    /// Whether the token is in its final `fraction` of lifetime —
    /// entities "generate a new token, once a token is closer to
    /// expiration".
    pub fn near_expiry(&self, now_ms: u64, fraction: f64) -> bool {
        let lifetime = self.valid_until_ms.saturating_sub(self.valid_from_ms);
        let elapsed = now_ms.saturating_sub(self.valid_from_ms);
        lifetime == 0 || (elapsed as f64) >= (lifetime as f64) * fraction
    }
}

impl Encode for AuthorizationToken {
    fn encode(&self, w: &mut Writer) {
        w.put_uuid(&self.trace_topic);
        w.put_bytes(&self.delegate_key.to_bytes());
        w.put_u8(self.rights.wire_id());
        w.put_u64(self.valid_from_ms);
        w.put_u64(self.valid_until_ms);
        w.put_bytes(&self.signature);
    }
}

impl Decode for AuthorizationToken {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let trace_topic = r.get_uuid()?;
        let key_bytes = r.get_bytes()?;
        let delegate_key = RsaPublicKey::from_bytes(&key_bytes)?;
        let rights = Rights::from_wire_id(r.get_u8()?)?;
        let valid_from_ms = r.get_u64()?;
        let valid_until_ms = r.get_u64()?;
        let signature = r.get_bytes()?;
        Ok(AuthorizationToken {
            trace_topic,
            delegate_key,
            rights,
            valid_from_ms,
            valid_until_ms,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::cert::{CertificateAuthority, Validity};
    use nb_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    const NOW: u64 = 1_700_000_000_000;

    struct Fixture {
        owner: Credential,
        delegate: RsaKeyPair,
    }

    fn fixture() -> &'static Fixture {
        static FX: OnceLock<Fixture> = OnceLock::new();
        FX.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(99);
            let mut ca = CertificateAuthority::new(
                "ca",
                512,
                Validity::starting_now(NOW - 1000, 1 << 40),
                &mut rng,
            )
            .unwrap();
            let owner = ca
                .issue(
                    "entity:owner",
                    Validity::starting_now(NOW - 1000, 1 << 40),
                    &mut rng,
                )
                .unwrap();
            let delegate = RsaKeyPair::generate(512, &mut rng).unwrap();
            Fixture { owner, delegate }
        })
    }

    fn token(valid_from: u64, valid_until: u64) -> AuthorizationToken {
        let fx = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        AuthorizationToken::issue(
            &fx.owner,
            Uuid::new_v4(&mut rng),
            fx.delegate.public.clone(),
            Rights::Publish,
            valid_from,
            valid_until,
        )
        .unwrap()
    }

    #[test]
    fn valid_token_verifies() {
        let fx = fixture();
        let t = token(NOW - 10_000, NOW + 60_000);
        t.verify(
            &fx.owner.certificate.public_key,
            Rights::Publish,
            NOW,
            DEFAULT_SKEW_MS,
        )
        .unwrap();
    }

    #[test]
    fn expired_token_rejected() {
        let fx = fixture();
        let t = token(NOW - 60_000, NOW - 1_000);
        assert!(t
            .verify(&fx.owner.certificate.public_key, Rights::Publish, NOW, 0)
            .is_err());
        assert!(t.is_expired(NOW));
    }

    #[test]
    fn skew_tolerance_near_expiry_boundary() {
        let fx = fixture();
        let t = token(NOW - 60_000, NOW - 50);
        // Expired by 50 ms but within the 100 ms NTP skew allowance.
        t.verify(
            &fx.owner.certificate.public_key,
            Rights::Publish,
            NOW,
            DEFAULT_SKEW_MS,
        )
        .unwrap();
        // Outside the allowance it fails.
        assert!(t
            .verify(&fx.owner.certificate.public_key, Rights::Publish, NOW, 10)
            .is_err());
    }

    #[test]
    fn window_boundary_is_inclusive_at_both_ends() {
        // Cross-layer contract with `Validity::contains` and session
        // keys: acceptance exactly *at* the boundary instants, even
        // with zero skew allowance.
        let fx = fixture();
        let t = token(NOW - 60_000, NOW + 60_000);
        t.verify(
            &fx.owner.certificate.public_key,
            Rights::Publish,
            NOW - 60_000,
            0,
        )
        .expect("accepted at exactly valid_from_ms with zero skew");
        t.verify(
            &fx.owner.certificate.public_key,
            Rights::Publish,
            NOW + 60_000,
            0,
        )
        .expect("accepted at exactly valid_until_ms with zero skew");
        assert!(!t.is_expired(NOW + 60_000));
        assert!(t.is_expired(NOW + 60_001));
        assert!(t
            .verify(
                &fx.owner.certificate.public_key,
                Rights::Publish,
                NOW + 60_001,
                0
            )
            .is_err());
    }

    #[test]
    fn not_yet_valid_token_rejected() {
        let fx = fixture();
        let t = token(NOW + 10_000, NOW + 60_000);
        assert!(t
            .verify(&fx.owner.certificate.public_key, Rights::Publish, NOW, 0)
            .is_err());
    }

    #[test]
    fn wrong_rights_rejected() {
        let fx = fixture();
        let t = token(NOW - 1000, NOW + 60_000);
        assert!(t
            .verify(
                &fx.owner.certificate.public_key,
                Rights::Subscribe,
                NOW,
                DEFAULT_SKEW_MS
            )
            .is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let fx = fixture();
        let mut t = token(NOW - 1000, NOW + 60_000);
        t.signature[10] ^= 0xff;
        assert!(t
            .verify(
                &fx.owner.certificate.public_key,
                Rights::Publish,
                NOW,
                DEFAULT_SKEW_MS
            )
            .is_err());
    }

    #[test]
    fn tampered_fields_invalidate_signature() {
        let fx = fixture();
        let mut t = token(NOW - 1000, NOW + 60_000);
        t.valid_until_ms += 1_000_000; // try to extend the delegation
        assert!(t
            .verify(
                &fx.owner.certificate.public_key,
                Rights::Publish,
                NOW,
                DEFAULT_SKEW_MS
            )
            .is_err());
    }

    #[test]
    fn wrong_owner_key_rejected() {
        let t = token(NOW - 1000, NOW + 60_000);
        let mut rng = StdRng::seed_from_u64(55);
        let other = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert!(t
            .verify(&other.public, Rights::Publish, NOW, DEFAULT_SKEW_MS)
            .is_err());
    }

    #[test]
    fn codec_round_trip() {
        let t = token(NOW - 1000, NOW + 60_000);
        let bytes = t.to_bytes();
        assert_eq!(AuthorizationToken::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn near_expiry_detection() {
        let t = token(NOW, NOW + 100_000);
        assert!(!t.near_expiry(NOW + 10_000, 0.8));
        assert!(t.near_expiry(NOW + 85_000, 0.8));
        assert!(t.near_expiry(NOW + 200_000, 0.8));
    }

    #[test]
    fn rights_wire_round_trip() {
        for r in [Rights::Publish, Rights::Subscribe] {
            assert_eq!(Rights::from_wire_id(r.wire_id()).unwrap(), r);
        }
        assert!(Rights::from_wire_id(0).is_err());
    }
}
