//! Minimal binary codec: length-prefixed, big-endian, LEB128 varints.
//!
//! Every structure that crosses a link implements [`Encode`] and
//! [`Decode`]. The format is deliberately simple — fixed-width
//! integers for protocol fields, varints for lengths — so that a
//! decoder can enforce strict bounds and reject malformed input
//! without allocation blow-ups (lengths are capped at
//! [`MAX_CHUNK_LEN`]).

use crate::error::WireError;
use crate::Result;
use nb_crypto::Uuid;

/// Upper bound on any single length-prefixed chunk (16 MiB). Protects
/// decoders from hostile length prefixes.
pub const MAX_CHUNK_LEN: usize = 16 * 1024 * 1024;

/// Serialization sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` (IEEE-754 bits, big-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a varint-length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a 16-byte UUID.
    pub fn put_uuid(&mut self, u: &Uuid) {
        self.buf.extend_from_slice(u.as_bytes());
    }

    /// Appends an `Option<T>` via a presence byte.
    pub fn put_option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                f(self, inner);
            }
        }
    }

    /// Appends a sequence with a varint count prefix.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_varint(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }

    /// Reserves four bytes for a big-endian `u32` to be patched in
    /// later with [`Writer::patch_u32`], returning the reservation
    /// offset. Used for length prefixes whose value is only known
    /// after the prefixed content has been written.
    pub fn reserve_u32(&mut self) -> usize {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        at
    }

    /// Overwrites a four-byte reservation made by
    /// [`Writer::reserve_u32`] with a big-endian `u32`.
    ///
    /// # Panics
    /// Panics if `at` does not address four already-written bytes.
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserialization cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the reader is fully consumed.
    pub fn expect_end(&self, what: &'static str) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(what))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(WireError::Truncated(what));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(u64::from_be_bytes(
            self.take(8, "f64")?.try_into().unwrap(),
        )))
    }

    /// Reads a boolean byte (strict: must be 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { what: "bool", tag }),
        }
    }

    /// Reads an unsigned LEB128 varint (max 10 bytes).
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(WireError::LengthOverflow("varint"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint-length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        Ok(self.get_bytes_ref()?.to_vec())
    }

    /// Reads a varint-length-prefixed byte slice without copying: the
    /// returned slice borrows from the underlying buffer. This is the
    /// allocation-free primitive the zero-copy [`crate::view`] parsers
    /// are built on.
    pub fn get_bytes_ref(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint()? as usize;
        if len > MAX_CHUNK_LEN {
            return Err(WireError::LengthOverflow("bytes"));
        }
        self.take(len, "bytes body")
    }

    /// Reads a varint-length-prefixed UTF-8 string without copying.
    pub fn get_str_ref(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes_ref()?).map_err(|_| WireError::BadUtf8("string"))
    }

    /// Reads exactly `n` raw bytes as a borrowed slice (no length
    /// prefix, no copy). `what` labels truncation errors.
    pub fn get_exact(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        Ok(self.get_str_ref()?.to_string())
    }

    /// Reads a 16-byte UUID.
    pub fn get_uuid(&mut self) -> Result<Uuid> {
        let bytes: [u8; 16] = self.take(16, "uuid")?.try_into().unwrap();
        Ok(Uuid::from_bytes(bytes))
    }

    /// Reads an `Option<T>` via a presence byte.
    pub fn get_option<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Option<T>> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(WireError::UnknownTag {
                what: "option",
                tag,
            }),
        }
    }

    /// Reads a varint-counted sequence.
    pub fn get_seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let count = self.get_varint()? as usize;
        if count > MAX_CHUNK_LEN {
            return Err(WireError::LengthOverflow("sequence"));
        }
        let mut out = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types that serialize to the wire format.
pub trait Encode {
    /// Writes `self` into the writer.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encode to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types that deserialize from the wire format.
pub trait Decode: Sized {
    /// Reads a value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Convenience: decode from a complete byte slice, requiring full
    /// consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end("structure")?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdeadbeef);
        w.put_u64(0x0123456789abcdef);
        w.put_f64(1.5);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.get_u64().unwrap(), 0x0123456789abcdef);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        r.expect_end("test").unwrap();
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v, "v={v}");
            r.expect_end("varint").unwrap();
        }
    }

    #[test]
    fn varint_encoding_is_minimal_for_small_values() {
        let mut w = Writer::new();
        w.put_varint(5);
        assert_eq!(w.into_bytes(), vec![5]);
        let mut w = Writer::new();
        w.put_varint(300);
        assert_eq!(w.into_bytes(), vec![0xac, 0x02]);
    }

    #[test]
    fn bytes_and_strings() {
        let mut w = Writer::new();
        w.put_bytes(b"hello");
        w.put_str("Availability/Traces/entity-1");
        w.put_bytes(b"");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "Availability/Traces/entity-1");
        assert_eq!(r.get_bytes().unwrap(), b"");
    }

    #[test]
    fn options_and_sequences() {
        let mut w = Writer::new();
        w.put_option(&Some(42u64), |w, v| w.put_u64(*v));
        w.put_option(&None::<u64>, |w, v| w.put_u64(*v));
        w.put_seq(&[1u32, 2, 3], |w, v| w.put_u32(*v));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_option(|r| r.get_u64()).unwrap(), Some(42));
        assert_eq!(r.get_option(|r| r.get_u64()).unwrap(), None);
        assert_eq!(r.get_seq(|r| r.get_u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert_eq!(r.get_u64(), Err(WireError::Truncated("u64")));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut w = Writer::new();
        w.put_varint(u64::MAX); // absurd length
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes(),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn overlong_varint_rejected() {
        let bytes = [0xffu8; 11];
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_varint(), Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn strict_bool_rejects_other_bytes() {
        let mut r = Reader::new(&[2u8]);
        assert!(matches!(r.get_bool(), Err(WireError::UnknownTag { .. })));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), Err(WireError::BadUtf8("string")));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = Reader::new(&[1, 2, 3]);
        let _ = r.get_u8().unwrap();
        assert!(r.expect_end("x").is_err());
    }
}
