//! # nb-wire — topics, messages, and the binary codec
//!
//! Everything that crosses a link between entities, brokers, and
//! Topic Discovery Nodes is defined here:
//!
//! * the topic model ([`topic::Topic`]) and the paper's
//!   **constrained-topic grammar** with its defaulting rules
//!   ([`constrained`]),
//! * the trace taxonomy of Table 1 and its topic mapping of Table 2
//!   ([`trace`]),
//! * protocol payloads for topic creation/discovery, registration,
//!   pings, gauge-interest and key distribution ([`payload`]),
//! * authorization tokens (§4.3) ([`token`]),
//! * the message envelope with optional signature, token and causal
//!   trace context ([`message`]), and
//! * a hand-rolled, versioned binary codec ([`codec`]).

pub mod codec;
pub mod constrained;
pub mod error;
mod instrument;
pub mod message;
pub mod payload;
pub mod token;
pub mod topic;
pub mod trace;
pub mod view;

pub use constrained::{AllowedActions, ConstrainedTopic, Constrainer, Distribution, EventType};
pub use error::WireError;
pub use message::{Message, SessionTag, SESSION_TAG_LEN, SESSION_TAG_MAC_LEN};
pub use payload::Payload;
pub use token::{AuthorizationToken, Rights};
pub use topic::Topic;
pub use trace::{EntityState, LoadInformation, NetworkMetrics, TraceEvent, TraceKind};
pub use view::{topic_hash, MessageView, TopicView};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WireError>;
