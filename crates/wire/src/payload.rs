//! Protocol payloads: topic creation/discovery (§3.1), registration
//! (§3.2), broker operations (§3.3), interest gauging (§3.5), key
//! distribution (§5.1), and the §6.3 symmetric-key optimization.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::WireError;
use crate::topic::Topic;
use crate::trace::{EntityState, LoadInformation, TraceCategory, TraceEvent};
use crate::Result;
use nb_crypto::aes::KeySize;
use nb_crypto::cert::Certificate;
use nb_crypto::hybrid::SealedEnvelope;
use nb_crypto::modes::CipherMode;
use nb_crypto::Uuid;

/// Who may discover a topic advertisement (§3.1 "discovery
/// restrictions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryRestrictions {
    /// Anyone presenting a valid certificate may discover the topic.
    Open,
    /// Only the listed certificate subjects may discover the topic.
    AllowedSubjects(Vec<String>),
    /// Only certificates with the listed fingerprints may discover it.
    AllowedFingerprints(Vec<[u8; 32]>),
}

impl DiscoveryRestrictions {
    /// Whether `cert` satisfies the restriction.
    pub fn permits(&self, cert: &Certificate) -> bool {
        match self {
            DiscoveryRestrictions::Open => true,
            DiscoveryRestrictions::AllowedSubjects(subjects) => {
                subjects.iter().any(|s| s == &cert.subject)
            }
            DiscoveryRestrictions::AllowedFingerprints(fps) => {
                let fp = cert.fingerprint();
                fps.iter().any(|f| f == &fp)
            }
        }
    }
}

impl Encode for DiscoveryRestrictions {
    fn encode(&self, w: &mut Writer) {
        match self {
            DiscoveryRestrictions::Open => w.put_u8(1),
            DiscoveryRestrictions::AllowedSubjects(subjects) => {
                w.put_u8(2);
                w.put_seq(subjects, |w, s| w.put_str(s));
            }
            DiscoveryRestrictions::AllowedFingerprints(fps) => {
                w.put_u8(3);
                w.put_seq(fps, |w, fp| w.put_bytes(fp));
            }
        }
    }
}

impl Decode for DiscoveryRestrictions {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            1 => Ok(DiscoveryRestrictions::Open),
            2 => Ok(DiscoveryRestrictions::AllowedSubjects(
                r.get_seq(|r| r.get_str())?,
            )),
            3 => Ok(DiscoveryRestrictions::AllowedFingerprints(r.get_seq(
                |r| {
                    let bytes = r.get_bytes()?;
                    bytes
                        .try_into()
                        .map_err(|_| WireError::Truncated("fingerprint"))
                },
            )?)),
            tag => Err(WireError::UnknownTag {
                what: "DiscoveryRestrictions",
                tag,
            }),
        }
    }
}

/// A cryptographically signed topic advertisement, created by a TDN
/// upon a topic-creation request (§3.1). Stored at multiple TDNs and
/// routed back to the traced entity; it "establishes the ownership of
/// the topic".
#[derive(Debug, Clone, PartialEq)]
pub struct TopicAdvertisement {
    /// The TDN-generated 128-bit trace topic.
    pub topic_id: Uuid,
    /// Query-matching descriptor, e.g. `Availability/Traces/{entity}`.
    pub descriptor: String,
    /// The owner's credentials (establishes provenance).
    pub owner_cert: Certificate,
    /// Who may discover this advertisement.
    pub restrictions: DiscoveryRestrictions,
    /// TDN creation timestamp (ms since epoch).
    pub created_ms: u64,
    /// Advertisement lifetime in ms (0 = unbounded).
    pub lifetime_ms: u64,
    /// Identifier of the issuing TDN.
    pub tdn_id: String,
    /// TDN signature over the TBS bytes.
    pub signature: Vec<u8>,
}

impl TopicAdvertisement {
    /// The signed content.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_uuid(&self.topic_id);
        w.put_str(&self.descriptor);
        w.put_bytes(&self.owner_cert.to_bytes());
        self.restrictions.encode(&mut w);
        w.put_u64(self.created_ms);
        w.put_u64(self.lifetime_ms);
        w.put_str(&self.tdn_id);
        w.into_bytes()
    }

    /// Whether the advertisement has lapsed at `now_ms`.
    pub fn is_expired(&self, now_ms: u64) -> bool {
        self.lifetime_ms != 0 && now_ms > self.created_ms.saturating_add(self.lifetime_ms)
    }

    /// Verifies the TDN signature.
    pub fn verify(&self, tdn_key: &nb_crypto::rsa::RsaPublicKey) -> Result<()> {
        tdn_key
            .verify(
                nb_crypto::DigestAlgorithm::Sha256,
                &self.tbs_bytes(),
                &self.signature,
            )
            .map_err(WireError::Crypto)
    }
}

impl Encode for TopicAdvertisement {
    fn encode(&self, w: &mut Writer) {
        w.put_uuid(&self.topic_id);
        w.put_str(&self.descriptor);
        w.put_bytes(&self.owner_cert.to_bytes());
        self.restrictions.encode(w);
        w.put_u64(self.created_ms);
        w.put_u64(self.lifetime_ms);
        w.put_str(&self.tdn_id);
        w.put_bytes(&self.signature);
    }
}

impl Decode for TopicAdvertisement {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TopicAdvertisement {
            topic_id: r.get_uuid()?,
            descriptor: r.get_str()?,
            owner_cert: Certificate::from_bytes(&r.get_bytes()?)?,
            restrictions: DiscoveryRestrictions::decode(r)?,
            created_ms: r.get_u64()?,
            lifetime_ms: r.get_u64()?,
            tdn_id: r.get_str()?,
            signature: r.get_bytes()?,
        })
    }
}

fn put_sealed(w: &mut Writer, env: &SealedEnvelope) {
    w.put_bytes(&env.encrypted_key);
    w.put_bytes(&env.iv);
    w.put_bytes(&env.ciphertext);
    w.put_u8(key_size_id(env.key_size));
    w.put_u8(env.mode.wire_id());
}

fn get_sealed(r: &mut Reader<'_>) -> Result<SealedEnvelope> {
    let encrypted_key = r.get_bytes()?;
    let iv: [u8; 16] = r
        .get_bytes()?
        .try_into()
        .map_err(|_| WireError::Truncated("sealed iv"))?;
    let ciphertext = r.get_bytes()?;
    let key_size = key_size_from_id(r.get_u8()?)?;
    let mode = CipherMode::from_wire_id(r.get_u8()?)?;
    Ok(SealedEnvelope {
        encrypted_key,
        iv,
        ciphertext,
        key_size,
        mode,
    })
}

fn key_size_id(ks: KeySize) -> u8 {
    match ks {
        KeySize::Aes128 => 1,
        KeySize::Aes192 => 2,
        KeySize::Aes256 => 3,
    }
}

fn key_size_from_id(tag: u8) -> Result<KeySize> {
    match tag {
        1 => Ok(KeySize::Aes128),
        2 => Ok(KeySize::Aes192),
        3 => Ok(KeySize::Aes256),
        tag => Err(WireError::UnknownTag {
            what: "KeySize",
            tag,
        }),
    }
}

/// The contents of a sealed registration response (§3.2): request id
/// correlation plus the broker-generated session identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionGrant {
    /// Echoes the registration request id.
    pub request_id: u64,
    /// The newly generated session identifier.
    pub session_id: Uuid,
}

impl Encode for SessionGrant {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.request_id);
        w.put_uuid(&self.session_id);
    }
}

impl Decode for SessionGrant {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(SessionGrant {
            request_id: r.get_u64()?,
            session_id: r.get_uuid()?,
        })
    }
}

/// The contents of a sealed trace-key delivery (§5.1): "the secret
/// trace key, the encryption algorithm and the padding scheme".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKeyMaterial {
    /// The secret symmetric trace key.
    pub key: Vec<u8>,
    /// Key size / algorithm selector.
    pub key_size_id: u8,
    /// Cipher mode selector.
    pub mode_id: u8,
    /// Padding scheme label (PKCS#7 here).
    pub padding: String,
}

impl TraceKeyMaterial {
    /// Standard material for a fresh 192-bit AES-CBC trace key.
    pub fn aes192_cbc(key: Vec<u8>) -> Self {
        Self::aes192(key, CipherMode::Cbc)
    }

    /// Material for a 192-bit AES key with an explicit mode — the
    /// §5.1 negotiation of "the encryption algorithm and padding
    /// scheme" (padding only applies to CBC; CTR needs none).
    pub fn aes192(key: Vec<u8>, mode: CipherMode) -> Self {
        TraceKeyMaterial {
            key,
            key_size_id: key_size_id(KeySize::Aes192),
            mode_id: mode.wire_id(),
            padding: match mode {
                CipherMode::Cbc => "PKCS7".to_string(),
                CipherMode::Ctr => "NONE".to_string(),
            },
        }
    }

    /// The negotiated cipher mode.
    pub fn mode(&self) -> Result<CipherMode> {
        CipherMode::from_wire_id(self.mode_id).map_err(WireError::Crypto)
    }
}

impl Encode for TraceKeyMaterial {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.key);
        w.put_u8(self.key_size_id);
        w.put_u8(self.mode_id);
        w.put_str(&self.padding);
    }
}

impl Decode for TraceKeyMaterial {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TraceKeyMaterial {
            key: r.get_bytes()?,
            key_size_id: r.get_u8()?,
            mode_id: r.get_u8()?,
            padding: r.get_str()?,
        })
    }
}

/// All message bodies exchanged in the system.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    // ----- broker/client control plane -----
    /// Client attaches to a broker.
    Attach {
        /// Client identifier.
        client_id: String,
    },
    /// Register a subscription filter.
    Subscribe {
        /// The topic filter to subscribe to.
        filter: Topic,
    },
    /// Remove a subscription filter.
    Unsubscribe {
        /// The previously registered filter.
        filter: Topic,
    },
    /// Positive acknowledgement of a control request.
    Ack,
    /// Negative acknowledgement with a reason.
    Nack {
        /// Why the request was refused.
        reason: String,
    },

    // ----- topic creation & discovery (§3.1, §3.4) -----
    /// Entity → TDN: create a trace topic.
    TopicCreationRequest {
        /// The requesting entity's credentials.
        credentials: Certificate,
        /// Descriptor to associate with the topic.
        descriptor: String,
        /// Who may discover the topic.
        restrictions: DiscoveryRestrictions,
        /// Topic lifetime in ms (0 = unbounded).
        lifetime_ms: u64,
    },
    /// TDN → entity: the signed advertisement.
    TopicCreationResponse {
        /// The newly minted advertisement.
        advertisement: TopicAdvertisement,
    },
    /// Tracker → TDN: discover a trace topic.
    DiscoveryRequest {
        /// Descriptor query (e.g. `/Liveness/entity-1`).
        query: String,
        /// The requesting tracker's credentials.
        credentials: Certificate,
    },
    /// TDN → tracker: matching advertisements (empty response is never
    /// sent for unauthorized queries — they are silently ignored).
    DiscoveryResponse {
        /// Matching, authorized advertisements.
        advertisements: Vec<TopicAdvertisement>,
    },
    /// TDN ↔ TDN: replicate an advertisement.
    AdvertisementReplica {
        /// The advertisement being replicated.
        advertisement: TopicAdvertisement,
    },

    // ----- trace registration (§3.2) -----
    /// Entity → broker: request tracing (published on the registration
    /// constrained topic; the envelope must be signed).
    TraceRegistration {
        /// The entity's identifier.
        entity_id: String,
        /// The entity's credentials.
        credentials: Certificate,
        /// The trace-topic advertisement (provenance).
        advertisement: TopicAdvertisement,
    },
    /// Broker → entity: success, sealed to the entity's public key.
    RegistrationAccepted {
        /// Sealed [`SessionGrant`].
        sealed: SealedEnvelope,
    },
    /// Broker → entity: verification failed.
    RegistrationRejected {
        /// Why registration was refused.
        reason: String,
    },

    // ----- broker operations (§3.3) -----
    /// Broker → entity: ping probe with monotone number + timestamp.
    Ping {
        /// Monotonically increasing ping number.
        seq: u64,
        /// Broker send timestamp (ms).
        sent_at_ms: u64,
    },
    /// Entity → broker: echo of the ping.
    PingResponse {
        /// Echoed ping number.
        seq: u64,
        /// Echoed broker timestamp.
        echo_sent_at_ms: u64,
        /// The entity's current lifecycle state.
        state: EntityState,
    },
    /// Entity → broker: lifecycle state change notification.
    StateReport {
        /// Previous state, if any.
        from: Option<EntityState>,
        /// New state.
        to: EntityState,
    },
    /// Entity → broker: host load change report.
    LoadReport {
        /// The load measurements.
        load: LoadInformation,
    },
    /// Entity → broker: stop tracing me (REVERTING_TO_SILENT_MODE).
    SilentModeRequest,

    // ----- trace publication -----
    /// A plaintext trace event.
    Trace {
        /// The event.
        event: TraceEvent,
    },
    /// An AES-encrypted trace event (confidential tracing, §5.1).
    EncryptedTrace {
        /// CBC initialization vector.
        iv: [u8; 16],
        /// Ciphertext of the encoded [`TraceEvent`].
        ciphertext: Vec<u8>,
    },

    // ----- interest gauging (§3.5) & key distribution (§5.1) -----
    /// Broker → trackers: is anyone interested in this entity?
    GaugeInterestRequest {
        /// Set when traces will be encrypted; trackers must respond
        /// with credentials to receive the trace key.
        secured: bool,
    },
    /// Tracker → broker: interest registration.
    InterestResponse {
        /// The tracker's credentials.
        credentials: Certificate,
        /// Categories the tracker wants (any combination).
        interests: Vec<TraceCategory>,
        /// Topic on which the tracker expects the key delivery.
        reply_topic: Topic,
    },
    /// Broker → tracker: sealed [`TraceKeyMaterial`].
    TraceKeyDelivery {
        /// Sealed to the tracker's public key.
        sealed: SealedEnvelope,
    },

    // ----- §6.3 signing-cost optimization -----
    /// Entity → broker: sealed symmetric session key replacing
    /// per-message RSA signatures.
    SymmetricKeySetup {
        /// Sealed to the broker's public key.
        sealed: SealedEnvelope,
    },

    /// Entity → broker: the delegation token the broker must attach
    /// to every trace it publishes for this entity (§4.3).
    DelegationToken {
        /// The freshly minted token.
        token: crate::token::AuthorizationToken,
    },

    // ----- session-key layer (amortized RSA) -----
    /// Entity → engine: a freshly minted session key
    /// (`nb_crypto::session::SessionKey` bytes), sealed to the hosting
    /// broker's public key. Must arrive RSA-signed — this is the
    /// asymmetric half of the handshake that every later session tag
    /// amortizes.
    SessionKeyAnnounce {
        /// Sealed to the broker's public key.
        sealed: SealedEnvelope,
    },
    /// Engine → tracker: the entity's current session key, sealed to
    /// the tracker's public key and delivered on its reply topic
    /// (mirrors [`Payload::TraceKeyDelivery`]).
    SessionKeyDelivery {
        /// Sealed to the tracker's public key.
        sealed: SealedEnvelope,
    },
    /// Engine → trackers / audit topic: a session key is no longer
    /// acceptable. On the trace topic it is tagged under the retiring
    /// key; on the audit topic it is RSA-signed.
    SessionKeyRevoke {
        /// The revoked key id.
        key_id: u64,
        /// The trace topic the key was bound to.
        topic: Uuid,
    },

    // ----- inter-broker control plane -----
    /// Broker → broker: link identification.
    NeighborHello {
        /// The neighbouring broker's identifier.
        broker_id: String,
    },
    /// Broker → broker: interest advertisement (subscription
    /// propagation).
    NeighborSubscribe {
        /// The filter now of interest behind this link.
        filter: Topic,
    },
    /// Broker → broker: interest withdrawal.
    NeighborUnsubscribe {
        /// The filter no longer of interest.
        filter: Topic,
    },

    /// Opaque bytes (benchmarks and tests).
    Blob {
        /// Arbitrary payload bytes.
        data: Vec<u8>,
    },
}

/// Whether a payload tag byte denotes broker control traffic
/// (connection management and subscription state) rather than
/// routable data. The broker's zero-copy fast path checks the tag
/// straight off the wire — see [`crate::view::MessageView`] — and
/// sends control frames through the full decode + dispatch path.
pub fn is_control_tag(tag: u8) -> bool {
    // Attach/Subscribe/Unsubscribe/Ack/Nack and the NeighborHello/
    // NeighborSubscribe/NeighborUnsubscribe inter-broker handshakes.
    matches!(tag, 1..=5 | 70..=72)
}

impl Encode for Payload {
    fn encode(&self, w: &mut Writer) {
        match self {
            Payload::Attach { client_id } => {
                w.put_u8(1);
                w.put_str(client_id);
            }
            Payload::Subscribe { filter } => {
                w.put_u8(2);
                filter.encode(w);
            }
            Payload::Unsubscribe { filter } => {
                w.put_u8(3);
                filter.encode(w);
            }
            Payload::Ack => w.put_u8(4),
            Payload::Nack { reason } => {
                w.put_u8(5);
                w.put_str(reason);
            }
            Payload::TopicCreationRequest {
                credentials,
                descriptor,
                restrictions,
                lifetime_ms,
            } => {
                w.put_u8(10);
                w.put_bytes(&credentials.to_bytes());
                w.put_str(descriptor);
                restrictions.encode(w);
                w.put_u64(*lifetime_ms);
            }
            Payload::TopicCreationResponse { advertisement } => {
                w.put_u8(11);
                advertisement.encode(w);
            }
            Payload::DiscoveryRequest { query, credentials } => {
                w.put_u8(12);
                w.put_str(query);
                w.put_bytes(&credentials.to_bytes());
            }
            Payload::DiscoveryResponse { advertisements } => {
                w.put_u8(13);
                w.put_seq(advertisements, |w, a| a.encode(w));
            }
            Payload::AdvertisementReplica { advertisement } => {
                w.put_u8(14);
                advertisement.encode(w);
            }
            Payload::TraceRegistration {
                entity_id,
                credentials,
                advertisement,
            } => {
                w.put_u8(20);
                w.put_str(entity_id);
                w.put_bytes(&credentials.to_bytes());
                advertisement.encode(w);
            }
            Payload::RegistrationAccepted { sealed } => {
                w.put_u8(21);
                put_sealed(w, sealed);
            }
            Payload::RegistrationRejected { reason } => {
                w.put_u8(22);
                w.put_str(reason);
            }
            Payload::Ping { seq, sent_at_ms } => {
                w.put_u8(30);
                w.put_u64(*seq);
                w.put_u64(*sent_at_ms);
            }
            Payload::PingResponse {
                seq,
                echo_sent_at_ms,
                state,
            } => {
                w.put_u8(31);
                w.put_u64(*seq);
                w.put_u64(*echo_sent_at_ms);
                w.put_u8(state.wire_id());
            }
            Payload::StateReport { from, to } => {
                w.put_u8(32);
                w.put_option(from, |w, s| w.put_u8(s.wire_id()));
                w.put_u8(to.wire_id());
            }
            Payload::LoadReport { load } => {
                w.put_u8(33);
                load.encode(w);
            }
            Payload::SilentModeRequest => w.put_u8(34),
            Payload::Trace { event } => {
                w.put_u8(40);
                event.encode(w);
            }
            Payload::EncryptedTrace { iv, ciphertext } => {
                w.put_u8(41);
                w.put_bytes(iv);
                w.put_bytes(ciphertext);
            }
            Payload::GaugeInterestRequest { secured } => {
                w.put_u8(50);
                w.put_bool(*secured);
            }
            Payload::InterestResponse {
                credentials,
                interests,
                reply_topic,
            } => {
                w.put_u8(51);
                w.put_bytes(&credentials.to_bytes());
                w.put_seq(interests, |w, c| w.put_u8(c.wire_id()));
                reply_topic.encode(w);
            }
            Payload::TraceKeyDelivery { sealed } => {
                w.put_u8(52);
                put_sealed(w, sealed);
            }
            Payload::SymmetricKeySetup { sealed } => {
                w.put_u8(60);
                put_sealed(w, sealed);
            }
            Payload::SessionKeyAnnounce { sealed } => {
                w.put_u8(63);
                put_sealed(w, sealed);
            }
            Payload::SessionKeyDelivery { sealed } => {
                w.put_u8(64);
                put_sealed(w, sealed);
            }
            Payload::SessionKeyRevoke { key_id, topic } => {
                w.put_u8(65);
                w.put_u64(*key_id);
                w.put_uuid(topic);
            }
            Payload::DelegationToken { token } => {
                w.put_u8(62);
                token.encode(w);
            }
            Payload::NeighborHello { broker_id } => {
                w.put_u8(70);
                w.put_str(broker_id);
            }
            Payload::NeighborSubscribe { filter } => {
                w.put_u8(71);
                filter.encode(w);
            }
            Payload::NeighborUnsubscribe { filter } => {
                w.put_u8(72);
                filter.encode(w);
            }
            Payload::Blob { data } => {
                w.put_u8(200);
                w.put_bytes(data);
            }
        }
    }
}

impl Decode for Payload {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            1 => Ok(Payload::Attach {
                client_id: r.get_str()?,
            }),
            2 => Ok(Payload::Subscribe {
                filter: Topic::decode(r)?,
            }),
            3 => Ok(Payload::Unsubscribe {
                filter: Topic::decode(r)?,
            }),
            4 => Ok(Payload::Ack),
            5 => Ok(Payload::Nack {
                reason: r.get_str()?,
            }),
            10 => Ok(Payload::TopicCreationRequest {
                credentials: Certificate::from_bytes(&r.get_bytes()?)?,
                descriptor: r.get_str()?,
                restrictions: DiscoveryRestrictions::decode(r)?,
                lifetime_ms: r.get_u64()?,
            }),
            11 => Ok(Payload::TopicCreationResponse {
                advertisement: TopicAdvertisement::decode(r)?,
            }),
            12 => Ok(Payload::DiscoveryRequest {
                query: r.get_str()?,
                credentials: Certificate::from_bytes(&r.get_bytes()?)?,
            }),
            13 => Ok(Payload::DiscoveryResponse {
                advertisements: r.get_seq(TopicAdvertisement::decode)?,
            }),
            14 => Ok(Payload::AdvertisementReplica {
                advertisement: TopicAdvertisement::decode(r)?,
            }),
            20 => Ok(Payload::TraceRegistration {
                entity_id: r.get_str()?,
                credentials: Certificate::from_bytes(&r.get_bytes()?)?,
                advertisement: TopicAdvertisement::decode(r)?,
            }),
            21 => Ok(Payload::RegistrationAccepted {
                sealed: get_sealed(r)?,
            }),
            22 => Ok(Payload::RegistrationRejected {
                reason: r.get_str()?,
            }),
            30 => Ok(Payload::Ping {
                seq: r.get_u64()?,
                sent_at_ms: r.get_u64()?,
            }),
            31 => Ok(Payload::PingResponse {
                seq: r.get_u64()?,
                echo_sent_at_ms: r.get_u64()?,
                state: EntityState::from_wire_id(r.get_u8()?)?,
            }),
            32 => Ok(Payload::StateReport {
                from: r.get_option(|r| EntityState::from_wire_id(r.get_u8()?))?,
                to: EntityState::from_wire_id(r.get_u8()?)?,
            }),
            33 => Ok(Payload::LoadReport {
                load: LoadInformation::decode(r)?,
            }),
            34 => Ok(Payload::SilentModeRequest),
            40 => Ok(Payload::Trace {
                event: TraceEvent::decode(r)?,
            }),
            41 => Ok(Payload::EncryptedTrace {
                iv: r
                    .get_bytes()?
                    .try_into()
                    .map_err(|_| WireError::Truncated("trace iv"))?,
                ciphertext: r.get_bytes()?,
            }),
            50 => Ok(Payload::GaugeInterestRequest {
                secured: r.get_bool()?,
            }),
            51 => Ok(Payload::InterestResponse {
                credentials: Certificate::from_bytes(&r.get_bytes()?)?,
                interests: r.get_seq(|r| TraceCategory::from_wire_id(r.get_u8()?))?,
                reply_topic: Topic::decode(r)?,
            }),
            52 => Ok(Payload::TraceKeyDelivery {
                sealed: get_sealed(r)?,
            }),
            60 => Ok(Payload::SymmetricKeySetup {
                sealed: get_sealed(r)?,
            }),
            62 => Ok(Payload::DelegationToken {
                token: crate::token::AuthorizationToken::decode(r)?,
            }),
            63 => Ok(Payload::SessionKeyAnnounce {
                sealed: get_sealed(r)?,
            }),
            64 => Ok(Payload::SessionKeyDelivery {
                sealed: get_sealed(r)?,
            }),
            65 => Ok(Payload::SessionKeyRevoke {
                key_id: r.get_u64()?,
                topic: r.get_uuid()?,
            }),
            70 => Ok(Payload::NeighborHello {
                broker_id: r.get_str()?,
            }),
            71 => Ok(Payload::NeighborSubscribe {
                filter: Topic::decode(r)?,
            }),
            72 => Ok(Payload::NeighborUnsubscribe {
                filter: Topic::decode(r)?,
            }),
            200 => Ok(Payload::Blob {
                data: r.get_bytes()?,
            }),
            tag => Err(WireError::UnknownTag {
                what: "Payload",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::cert::{CertificateAuthority, Validity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    const NOW: u64 = 1_700_000_000_000;

    fn cert() -> &'static Certificate {
        static CERT: OnceLock<Certificate> = OnceLock::new();
        CERT.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut ca = CertificateAuthority::new(
                "ca",
                512,
                Validity::starting_now(NOW, 1 << 40),
                &mut rng,
            )
            .unwrap();
            ca.issue("entity:payload-test", Validity::starting_now(NOW, 1 << 40), &mut rng)
                .unwrap()
                .certificate
        })
    }

    fn advertisement() -> TopicAdvertisement {
        let mut rng = StdRng::seed_from_u64(12);
        TopicAdvertisement {
            topic_id: Uuid::new_v4(&mut rng),
            descriptor: "Availability/Traces/entity-1".to_string(),
            owner_cert: cert().clone(),
            restrictions: DiscoveryRestrictions::AllowedSubjects(vec![
                "tracker:ops".to_string()
            ]),
            created_ms: NOW,
            lifetime_ms: 3_600_000,
            tdn_id: "tdn-0".to_string(),
            signature: vec![1, 2, 3],
        }
    }

    fn round_trip(p: Payload) {
        let bytes = p.to_bytes();
        assert_eq!(Payload::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn control_payloads_round_trip() {
        round_trip(Payload::Attach {
            client_id: "client-7".to_string(),
        });
        round_trip(Payload::Subscribe {
            filter: Topic::parse("/A/B/#").unwrap(),
        });
        round_trip(Payload::Unsubscribe {
            filter: Topic::parse("/A/B").unwrap(),
        });
        round_trip(Payload::Ack);
        round_trip(Payload::Nack {
            reason: "constrained topic".to_string(),
        });
    }

    #[test]
    fn tdn_payloads_round_trip() {
        round_trip(Payload::TopicCreationRequest {
            credentials: cert().clone(),
            descriptor: "Availability/Traces/e".to_string(),
            restrictions: DiscoveryRestrictions::Open,
            lifetime_ms: 1000,
        });
        round_trip(Payload::TopicCreationResponse {
            advertisement: advertisement(),
        });
        round_trip(Payload::DiscoveryRequest {
            query: "/Liveness/e".to_string(),
            credentials: cert().clone(),
        });
        round_trip(Payload::DiscoveryResponse {
            advertisements: vec![advertisement(), advertisement()],
        });
        round_trip(Payload::AdvertisementReplica {
            advertisement: advertisement(),
        });
    }

    #[test]
    fn registration_payloads_round_trip() {
        round_trip(Payload::TraceRegistration {
            entity_id: "entity-1".to_string(),
            credentials: cert().clone(),
            advertisement: advertisement(),
        });
        round_trip(Payload::RegistrationRejected {
            reason: "bad signature".to_string(),
        });
    }

    #[test]
    fn sealed_payloads_round_trip() {
        let sealed = SealedEnvelope {
            encrypted_key: vec![9; 64],
            iv: [7; 16],
            ciphertext: vec![1, 2, 3, 4],
            key_size: KeySize::Aes192,
            mode: CipherMode::Cbc,
        };
        round_trip(Payload::RegistrationAccepted {
            sealed: sealed.clone(),
        });
        round_trip(Payload::TraceKeyDelivery {
            sealed: sealed.clone(),
        });
        round_trip(Payload::SymmetricKeySetup {
            sealed: sealed.clone(),
        });
        round_trip(Payload::SessionKeyAnnounce {
            sealed: sealed.clone(),
        });
        round_trip(Payload::SessionKeyDelivery { sealed });
        round_trip(Payload::SessionKeyRevoke {
            key_id: 0xdead_beef_1234_5678,
            topic: Uuid::from_bytes([3; 16]),
        });
    }

    #[test]
    fn operational_payloads_round_trip() {
        round_trip(Payload::Ping {
            seq: 9,
            sent_at_ms: NOW,
        });
        round_trip(Payload::PingResponse {
            seq: 9,
            echo_sent_at_ms: NOW,
            state: EntityState::Ready,
        });
        round_trip(Payload::StateReport {
            from: Some(EntityState::Initializing),
            to: EntityState::Ready,
        });
        round_trip(Payload::LoadReport {
            load: LoadInformation {
                cpu_percent: 55.0,
                memory_used_bytes: 123,
                memory_total_bytes: 456,
                workload: 7,
            },
        });
        round_trip(Payload::SilentModeRequest);
        round_trip(Payload::GaugeInterestRequest { secured: true });
        round_trip(Payload::InterestResponse {
            credentials: cert().clone(),
            interests: vec![
                TraceCategory::ChangeNotifications,
                TraceCategory::Load,
            ],
            reply_topic: Topic::parse("/replies/tracker-1").unwrap(),
        });
        round_trip(Payload::EncryptedTrace {
            iv: [3; 16],
            ciphertext: vec![0xaa; 48],
        });
        round_trip(Payload::Blob {
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Payload::from_bytes(&[99]),
            Err(WireError::UnknownTag { .. })
        ));
    }

    #[test]
    fn restrictions_permit_logic() {
        let c = cert();
        assert!(DiscoveryRestrictions::Open.permits(c));
        assert!(DiscoveryRestrictions::AllowedSubjects(vec![
            "entity:payload-test".to_string()
        ])
        .permits(c));
        assert!(!DiscoveryRestrictions::AllowedSubjects(vec!["other".to_string()]).permits(c));
        assert!(
            DiscoveryRestrictions::AllowedFingerprints(vec![c.fingerprint()]).permits(c)
        );
        assert!(!DiscoveryRestrictions::AllowedFingerprints(vec![[0u8; 32]]).permits(c));
    }

    #[test]
    fn advertisement_expiry() {
        let mut adv = advertisement();
        assert!(!adv.is_expired(NOW));
        assert!(!adv.is_expired(NOW + 3_600_000));
        assert!(adv.is_expired(NOW + 3_600_001));
        adv.lifetime_ms = 0; // unbounded
        assert!(!adv.is_expired(u64::MAX));
    }

    #[test]
    fn session_grant_and_key_material_round_trip() {
        let mut rng = StdRng::seed_from_u64(13);
        let grant = SessionGrant {
            request_id: 77,
            session_id: Uuid::new_v4(&mut rng),
        };
        assert_eq!(SessionGrant::from_bytes(&grant.to_bytes()).unwrap(), grant);

        let km = TraceKeyMaterial::aes192_cbc(vec![0x11; 24]);
        assert_eq!(
            TraceKeyMaterial::from_bytes(&km.to_bytes()).unwrap(),
            km
        );
        assert_eq!(km.padding, "PKCS7");
    }
}
