//! Wire-level error type.

use nb_crypto::CryptoError;
use std::fmt;

/// Errors raised while parsing topics or encoding/decoding messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A topic string violated the grammar.
    InvalidTopic(String),
    /// The buffer ended before the structure was complete.
    Truncated(&'static str),
    /// An enum tag byte had no corresponding variant.
    UnknownTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8(&'static str),
    /// A length prefix exceeded the sanity limit.
    LengthOverflow(&'static str),
    /// Unsupported codec version byte.
    BadVersion(u8),
    /// Trailing bytes after a complete structure.
    TrailingBytes(&'static str),
    /// An embedded cryptographic structure failed to parse or verify.
    Crypto(CryptoError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::InvalidTopic(t) => write!(f, "invalid topic: {t}"),
            WireError::Truncated(what) => write!(f, "truncated {what}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown tag {tag} for {what}"),
            WireError::BadUtf8(what) => write!(f, "invalid UTF-8 in {what}"),
            WireError::LengthOverflow(what) => write!(f, "length overflow in {what}"),
            WireError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            WireError::TrailingBytes(what) => write!(f, "trailing bytes after {what}"),
            WireError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for WireError {
    fn from(e: CryptoError) -> Self {
        WireError::Crypto(e)
    }
}
