//! The trace taxonomy (paper Table 1) and its topic mapping (Table 2).

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::constrained::{
    AllowedActions, ConstrainedTopic, Constrainer, Distribution, EventType,
};
use crate::error::WireError;
use crate::topic::Topic;
use crate::Result;
use nb_crypto::Uuid;

/// Lifecycle states a traced entity reports (Table 1, row 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityState {
    /// The entity is starting up.
    Initializing,
    /// The entity is recovering after a failure.
    Recovering,
    /// The entity is available for work.
    Ready,
    /// The entity is shutting down cleanly.
    Shutdown,
}

impl EntityState {
    /// Stable wire tag.
    pub fn wire_id(self) -> u8 {
        match self {
            EntityState::Initializing => 1,
            EntityState::Recovering => 2,
            EntityState::Ready => 3,
            EntityState::Shutdown => 4,
        }
    }

    /// Inverse of [`EntityState::wire_id`].
    pub fn from_wire_id(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(EntityState::Initializing),
            2 => Ok(EntityState::Recovering),
            3 => Ok(EntityState::Ready),
            4 => Ok(EntityState::Shutdown),
            tag => Err(WireError::UnknownTag {
                what: "EntityState",
                tag,
            }),
        }
    }
}

/// Host load report (Table 1: "CPU Info, Memory Usage and Workload").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadInformation {
    /// CPU utilization in percent (0–100 per core-aggregate).
    pub cpu_percent: f64,
    /// Memory in use, bytes.
    pub memory_used_bytes: u64,
    /// Total memory, bytes.
    pub memory_total_bytes: u64,
    /// Application-defined workload figure (e.g. queue depth).
    pub workload: u64,
}

impl Encode for LoadInformation {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.cpu_percent);
        w.put_u64(self.memory_used_bytes);
        w.put_u64(self.memory_total_bytes);
        w.put_u64(self.workload);
    }
}

impl Decode for LoadInformation {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(LoadInformation {
            cpu_percent: r.get_f64()?,
            memory_used_bytes: r.get_u64()?,
            memory_total_bytes: r.get_u64()?,
            workload: r.get_u64()?,
        })
    }
}

/// Network-realm metrics for the entity↔broker link (Table 1:
/// "Loss rates, transit delay and bandwidth").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkMetrics {
    /// Fraction of pings lost over the measurement window, 0.0–1.0.
    pub loss_rate: f64,
    /// Mean transit delay, milliseconds.
    pub transit_delay_ms: f64,
    /// Estimated bandwidth, bytes per second.
    pub bandwidth_bps: f64,
    /// Fraction of ping responses arriving out of order.
    pub out_of_order_rate: f64,
}

impl Encode for NetworkMetrics {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.loss_rate);
        w.put_f64(self.transit_delay_ms);
        w.put_f64(self.bandwidth_bps);
        w.put_f64(self.out_of_order_rate);
    }
}

impl Decode for NetworkMetrics {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(NetworkMetrics {
            loss_rate: r.get_f64()?,
            transit_delay_ms: r.get_f64()?,
            bandwidth_bps: r.get_f64()?,
            out_of_order_rate: r.get_f64()?,
        })
    }
}

/// Every trace type of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// State information reported by a traced entity.
    StateTransition {
        /// Previous state (absent on the first report).
        from: Option<EntityState>,
        /// New state.
        to: EntityState,
    },
    /// Broker-generated failure detection: the entity missed enough
    /// pings to be suspected.
    FailureSuspicion,
    /// Broker-generated: the entity is deemed failed.
    Failed,
    /// Broker-generated: the entity disconnected.
    Disconnect,
    /// Probe for tracker interest in tracing an entity.
    GaugeInterest,
    /// The entity has requested tracing.
    Join,
    /// The entity has disabled tracing.
    RevertingToSilentMode,
    /// Heartbeat: the entity is still active.
    AllsWell,
    /// Host load report.
    LoadInformation(LoadInformation),
    /// Network-realm metrics.
    NetworkMetrics(NetworkMetrics),
}

impl TraceKind {
    /// The trace category, which selects the publication topic
    /// (Table 2).
    pub fn category(&self) -> TraceCategory {
        match self {
            TraceKind::StateTransition { .. } => TraceCategory::StateTransitions,
            TraceKind::FailureSuspicion
            | TraceKind::Failed
            | TraceKind::Disconnect
            | TraceKind::Join
            | TraceKind::RevertingToSilentMode => TraceCategory::ChangeNotifications,
            TraceKind::GaugeInterest => TraceCategory::Interest,
            TraceKind::AllsWell => TraceCategory::AllUpdates,
            TraceKind::LoadInformation(_) => TraceCategory::Load,
            TraceKind::NetworkMetrics(_) => TraceCategory::NetworkMetrics,
        }
    }
}

impl Encode for TraceKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            TraceKind::StateTransition { from, to } => {
                w.put_u8(1);
                w.put_option(from, |w, s| w.put_u8(s.wire_id()));
                w.put_u8(to.wire_id());
            }
            TraceKind::FailureSuspicion => w.put_u8(2),
            TraceKind::Failed => w.put_u8(3),
            TraceKind::Disconnect => w.put_u8(4),
            TraceKind::GaugeInterest => w.put_u8(5),
            TraceKind::Join => w.put_u8(6),
            TraceKind::RevertingToSilentMode => w.put_u8(7),
            TraceKind::AllsWell => w.put_u8(8),
            TraceKind::LoadInformation(l) => {
                w.put_u8(9);
                l.encode(w);
            }
            TraceKind::NetworkMetrics(m) => {
                w.put_u8(10);
                m.encode(w);
            }
        }
    }
}

impl Decode for TraceKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            1 => Ok(TraceKind::StateTransition {
                from: r.get_option(|r| EntityState::from_wire_id(r.get_u8()?))?,
                to: EntityState::from_wire_id(r.get_u8()?)?,
            }),
            2 => Ok(TraceKind::FailureSuspicion),
            3 => Ok(TraceKind::Failed),
            4 => Ok(TraceKind::Disconnect),
            5 => Ok(TraceKind::GaugeInterest),
            6 => Ok(TraceKind::Join),
            7 => Ok(TraceKind::RevertingToSilentMode),
            8 => Ok(TraceKind::AllsWell),
            9 => Ok(TraceKind::LoadInformation(LoadInformation::decode(r)?)),
            10 => Ok(TraceKind::NetworkMetrics(NetworkMetrics::decode(r)?)),
            tag => Err(WireError::UnknownTag {
                what: "TraceKind",
                tag,
            }),
        }
    }
}

/// The per-type publication channels of Table 2. Trackers subscribe
/// to the categories they care about ("greater selectivity in the
/// trace information at any given tracker").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// JOIN / FAILURE_SUSPICION / FAILED / DISCONNECT /
    /// REVERTING_TO_SILENT_MODE.
    ChangeNotifications,
    /// ALLS_WELL heartbeats.
    AllUpdates,
    /// Entity lifecycle state changes.
    StateTransitions,
    /// LOAD_INFORMATION reports.
    Load,
    /// NETWORK_METRICS reports.
    NetworkMetrics,
    /// GAUGE_INTEREST request/response.
    Interest,
}

impl TraceCategory {
    /// All tracker-subscribable categories (Interest excluded — it is
    /// the gauge-interest control channel).
    pub const SUBSCRIBABLE: [TraceCategory; 5] = [
        TraceCategory::ChangeNotifications,
        TraceCategory::AllUpdates,
        TraceCategory::StateTransitions,
        TraceCategory::Load,
        TraceCategory::NetworkMetrics,
    ];

    fn suffix(self) -> &'static str {
        match self {
            TraceCategory::ChangeNotifications => "ChangeNotifications",
            TraceCategory::AllUpdates => "AllUpdates",
            TraceCategory::StateTransitions => "StateTransitions",
            TraceCategory::Load => "Load",
            TraceCategory::NetworkMetrics => "NetworkMetrics",
            TraceCategory::Interest => "Interest",
        }
    }

    /// Stable wire tag.
    pub fn wire_id(self) -> u8 {
        match self {
            TraceCategory::ChangeNotifications => 1,
            TraceCategory::AllUpdates => 2,
            TraceCategory::StateTransitions => 3,
            TraceCategory::Load => 4,
            TraceCategory::NetworkMetrics => 5,
            TraceCategory::Interest => 6,
        }
    }

    /// Inverse of [`TraceCategory::wire_id`].
    pub fn from_wire_id(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(TraceCategory::ChangeNotifications),
            2 => Ok(TraceCategory::AllUpdates),
            3 => Ok(TraceCategory::StateTransitions),
            4 => Ok(TraceCategory::Load),
            5 => Ok(TraceCategory::NetworkMetrics),
            6 => Ok(TraceCategory::Interest),
            tag => Err(WireError::UnknownTag {
                what: "TraceCategory",
                tag,
            }),
        }
    }
}

/// A complete trace event as published by the tracing broker.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The traced entity this event concerns.
    pub entity_id: String,
    /// The entity's trace topic.
    pub trace_topic: Uuid,
    /// Monotonically increasing per-entity sequence number.
    pub seq: u64,
    /// Broker timestamp, milliseconds since epoch.
    pub timestamp_ms: u64,
    /// What happened.
    pub kind: TraceKind,
}

impl Encode for TraceEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.entity_id);
        w.put_uuid(&self.trace_topic);
        w.put_u64(self.seq);
        w.put_u64(self.timestamp_ms);
        self.kind.encode(w);
    }
}

impl Decode for TraceEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TraceEvent {
            entity_id: r.get_str()?,
            trace_topic: r.get_uuid()?,
            seq: r.get_u64()?,
            timestamp_ms: r.get_u64()?,
            kind: TraceKind::decode(r)?,
        })
    }
}

/// Builders for the Table 2 topics and the §3.2 session channels.
pub mod topics {
    use super::*;

    /// The descriptor a traced entity registers at the TDN:
    /// `Availability/Traces/{entity-id}` (§3.1).
    pub fn descriptor_for_entity(entity_id: &str) -> String {
        format!("Availability/Traces/{entity_id}")
    }

    /// The discovery query a tracker issues: `/Liveness/{entity-id}`
    /// (§3.4).
    pub fn discovery_query(entity_id: &str) -> String {
        format!("/Liveness/{entity_id}")
    }

    /// `/Constrained/Traces/Broker/Publish-Only/{trace-topic}/{category}` —
    /// the per-category publication topic of Table 2.
    pub fn publication(trace_topic: &Uuid, category: TraceCategory) -> Topic {
        ConstrainedTopic::new(
            EventType::Traces,
            Constrainer::Broker,
            AllowedActions::PublishOnly,
            Distribution::Disseminate,
            vec![trace_topic.to_string(), category.suffix().to_string()],
        )
        .to_topic()
    }

    /// `/Constrained/Traces/Broker/Subscribe-Only/Registration` —
    /// where entities publish trace-registration requests (§3.2).
    pub fn registration() -> Topic {
        ConstrainedTopic::new(
            EventType::Traces,
            Constrainer::Broker,
            AllowedActions::SubscribeOnly,
            Distribution::Suppress,
            vec!["Registration".to_string()],
        )
        .to_topic()
    }

    /// `/Constrained/Traces/Broker/Subscribe-Only/Limited/{trace-topic}/{session}`
    /// — entity→broker session channel (§3.2): the broker subscribes,
    /// the traced entity publishes.
    pub fn entity_to_broker(trace_topic: &Uuid, session_id: &Uuid) -> Topic {
        ConstrainedTopic::new(
            EventType::Traces,
            Constrainer::Broker,
            AllowedActions::SubscribeOnly,
            Distribution::Suppress,
            vec![trace_topic.to_string(), session_id.to_string()],
        )
        .to_topic()
    }

    /// `/Constrained/Traces/{entity-id}/Subscribe-Only/{trace-topic}/{session}`
    /// — broker→entity session channel (§3.2): the entity subscribes,
    /// the broker publishes (pings travel here).
    pub fn broker_to_entity(entity_id: &str, trace_topic: &Uuid, session_id: &Uuid) -> Topic {
        ConstrainedTopic::new(
            EventType::Traces,
            Constrainer::Entity(entity_id.to_string()),
            AllowedActions::SubscribeOnly,
            Distribution::Suppress,
            vec![trace_topic.to_string(), session_id.to_string()],
        )
        .to_topic()
    }

    /// `/Constrained/Traces/Broker/Publish-Only/{trace-topic}/Interest`
    /// — where the broker publishes GAUGE_INTEREST probes (§3.5).
    pub fn gauge_interest(trace_topic: &Uuid) -> Topic {
        publication(trace_topic, TraceCategory::Interest)
    }

    /// `/Constrained/Traces/Broker/Subscribe-Only/{trace-topic}/Interest`
    /// — where trackers publish their interest responses (§3.5).
    pub fn interest_response(trace_topic: &Uuid) -> Topic {
        ConstrainedTopic::new(
            EventType::Traces,
            Constrainer::Broker,
            AllowedActions::SubscribeOnly,
            Distribution::Disseminate,
            vec![trace_topic.to_string(), "Interest".to_string()],
        )
        .to_topic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constrained::{Action, Actor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uuid(seed: u64) -> Uuid {
        Uuid::new_v4(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn entity_state_wire_round_trip() {
        for s in [
            EntityState::Initializing,
            EntityState::Recovering,
            EntityState::Ready,
            EntityState::Shutdown,
        ] {
            assert_eq!(EntityState::from_wire_id(s.wire_id()).unwrap(), s);
        }
        assert!(EntityState::from_wire_id(0).is_err());
        assert!(EntityState::from_wire_id(5).is_err());
    }

    #[test]
    fn trace_kind_codec_round_trip() {
        let kinds = [
            TraceKind::StateTransition {
                from: Some(EntityState::Initializing),
                to: EntityState::Ready,
            },
            TraceKind::StateTransition {
                from: None,
                to: EntityState::Initializing,
            },
            TraceKind::FailureSuspicion,
            TraceKind::Failed,
            TraceKind::Disconnect,
            TraceKind::GaugeInterest,
            TraceKind::Join,
            TraceKind::RevertingToSilentMode,
            TraceKind::AllsWell,
            TraceKind::LoadInformation(LoadInformation {
                cpu_percent: 42.5,
                memory_used_bytes: 1 << 30,
                memory_total_bytes: 4 << 30,
                workload: 17,
            }),
            TraceKind::NetworkMetrics(NetworkMetrics {
                loss_rate: 0.01,
                transit_delay_ms: 1.8,
                bandwidth_bps: 12.5e6,
                out_of_order_rate: 0.0,
            }),
        ];
        for kind in kinds {
            let bytes = kind.to_bytes();
            assert_eq!(TraceKind::from_bytes(&bytes).unwrap(), kind);
        }
    }

    #[test]
    fn table2_category_mapping() {
        // Table 2 of the paper, row by row.
        assert_eq!(
            TraceKind::StateTransition {
                from: None,
                to: EntityState::Ready
            }
            .category(),
            TraceCategory::StateTransitions
        );
        for k in [
            TraceKind::FailureSuspicion,
            TraceKind::Failed,
            TraceKind::Disconnect,
            TraceKind::Join,
            TraceKind::RevertingToSilentMode,
        ] {
            assert_eq!(k.category(), TraceCategory::ChangeNotifications);
        }
        assert_eq!(TraceKind::GaugeInterest.category(), TraceCategory::Interest);
        assert_eq!(TraceKind::AllsWell.category(), TraceCategory::AllUpdates);
        assert_eq!(
            TraceKind::LoadInformation(LoadInformation {
                cpu_percent: 0.0,
                memory_used_bytes: 0,
                memory_total_bytes: 0,
                workload: 0
            })
            .category(),
            TraceCategory::Load
        );
        assert_eq!(
            TraceKind::NetworkMetrics(NetworkMetrics {
                loss_rate: 0.0,
                transit_delay_ms: 0.0,
                bandwidth_bps: 0.0,
                out_of_order_rate: 0.0
            })
            .category(),
            TraceCategory::NetworkMetrics
        );
    }

    #[test]
    fn publication_topics_match_paper_shape() {
        let tt = uuid(1);
        let topic = topics::publication(&tt, TraceCategory::ChangeNotifications);
        let s = topic.to_string();
        assert!(s.starts_with("/Constrained/Traces/Broker/Publish-Only/"));
        assert!(s.ends_with("/ChangeNotifications"));
        assert!(s.contains(&tt.to_string()));
    }

    #[test]
    fn publication_topics_enforce_broker_only_publish() {
        let tt = uuid(2);
        let topic = topics::publication(&tt, TraceCategory::AllUpdates);
        let c = ConstrainedTopic::parse(&topic).unwrap().unwrap();
        assert!(c.permits(&Actor::Broker, Action::Publish));
        assert!(!c.permits(&Actor::Entity("mallory".into()), Action::Publish));
        assert!(c.permits(&Actor::Entity("tracker-1".into()), Action::Subscribe));
    }

    #[test]
    fn session_channels_have_correct_constrainers() {
        let tt = uuid(3);
        let sess = uuid(4);
        let e2b = ConstrainedTopic::parse(&topics::entity_to_broker(&tt, &sess))
            .unwrap()
            .unwrap();
        assert_eq!(e2b.constrainer, Constrainer::Broker);
        assert_eq!(e2b.allowed_actions, AllowedActions::SubscribeOnly);
        assert!(e2b.suppressed());

        let b2e = ConstrainedTopic::parse(&topics::broker_to_entity("entity-9", &tt, &sess))
            .unwrap()
            .unwrap();
        assert_eq!(b2e.constrainer, Constrainer::Entity("entity-9".to_string()));
        assert!(b2e.permits(&Actor::Entity("entity-9".into()), Action::Subscribe));
        assert!(!b2e.permits(&Actor::Entity("other".into()), Action::Subscribe));
    }

    #[test]
    fn descriptor_and_query_formats() {
        assert_eq!(
            topics::descriptor_for_entity("worker-3"),
            "Availability/Traces/worker-3"
        );
        assert_eq!(topics::discovery_query("worker-3"), "/Liveness/worker-3");
    }

    #[test]
    fn distinct_trace_topics_give_distinct_channels() {
        let a = topics::publication(&uuid(5), TraceCategory::Load);
        let b = topics::publication(&uuid(6), TraceCategory::Load);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_event_codec_round_trip() {
        let ev = TraceEvent {
            entity_id: "entity-1".to_string(),
            trace_topic: uuid(7),
            seq: 99,
            timestamp_ms: 1_700_000_000_123,
            kind: TraceKind::AllsWell,
        };
        assert_eq!(TraceEvent::from_bytes(&ev.to_bytes()).unwrap(), ev);
    }

    #[test]
    fn interest_channels_are_paired() {
        let tt = uuid(8);
        let probe = topics::gauge_interest(&tt);
        let reply = topics::interest_response(&tt);
        assert_ne!(probe, reply);
        // The probe is broker-publish-only, the reply broker-subscribe-only.
        let probe_c = ConstrainedTopic::parse(&probe).unwrap().unwrap();
        let reply_c = ConstrainedTopic::parse(&reply).unwrap().unwrap();
        assert_eq!(probe_c.allowed_actions, AllowedActions::PublishOnly);
        assert_eq!(reply_c.allowed_actions, AllowedActions::SubscribeOnly);
    }
}
