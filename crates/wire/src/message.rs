//! The message envelope.
//!
//! Every unit routed by the broker network is a [`Message`]: a topic,
//! a payload, and optional authentication material — an RSA signature
//! (proof of credential possession, §4.2), an authorization token
//! (broker delegation, §4.3), or an HMAC under a shared session key
//! (the §6.3 signing-cost optimization).
//!
//! Since wire version 2 the envelope may also carry an optional
//! [`TraceContext`] for causal tracing. It travels in a *trailing
//! section* block after the authentication fields: a section count,
//! then `(tag, length-prefixed body)` pairs. Decoders skip sections
//! with tags they do not recognize, so the envelope can grow without
//! another version bump; version-1 encodings (no section block at all)
//! still decode.
//!
//! Wire version 3 length-prefixes the payload with a big-endian `u32`
//! so that a router can skip straight over the body to the
//! authentication and section trailers without decoding it. That is
//! what makes the zero-copy [`crate::view::MessageView`] possible:
//! the broker data plane parses only the routing-relevant fields of a
//! frame and forwards the original bytes untouched. Versions 1 and 2
//! still decode.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::WireError;
use crate::payload::Payload;
use crate::token::AuthorizationToken;
use crate::topic::Topic;
use crate::Result;
use nb_crypto::cert::Credential;
use nb_crypto::digest::DigestAlgorithm;
use nb_crypto::hmac::{hmac, verify_mac};
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::sha256::Sha256;
use nb_telemetry::TraceContext;

/// Codec version byte leading every encoded message.
pub const WIRE_VERSION: u8 = 3;

/// Oldest version this decoder still accepts (version-1 frames carry
/// no trailing-section block).
pub const MIN_WIRE_VERSION: u8 = 1;

/// Trailing-section tag carrying a [`TraceContext`].
pub const SECTION_TRACE: u8 = 1;

/// Trailing-section tag carrying a [`SessionTag`].
pub const SECTION_SESSION: u8 = 2;

/// Length of a session-tag MAC (HMAC-SHA256).
pub const SESSION_TAG_MAC_LEN: usize = 32;

/// Encoded length of a [`SessionTag`] section body.
pub const SESSION_TAG_LEN: usize = 8 + 8 + SESSION_TAG_MAC_LEN;

/// Session authentication tag (wire v3 trailing section).
///
/// Rides *outside* the signed region — like the trace section — so
/// attaching or stripping it never invalidates an end-to-end RSA
/// signature, and v1/v2 peers that predate it simply skip the section.
/// The MAC covers `key_id ‖ seq ‖ signable-bytes` under the session
/// key named by `key_id` (see `nb_crypto::session`), so the tag binds
/// to both the key and this message's position in the tagged stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTag {
    /// Identifier of the session key that produced `mac`.
    pub key_id: u64,
    /// Per-key sequence number of this message.
    pub seq: u64,
    /// HMAC-SHA256 over `key_id ‖ seq ‖ signable-bytes`.
    pub mac: [u8; SESSION_TAG_MAC_LEN],
}

impl SessionTag {
    /// Encodes the section body (fixed [`SESSION_TAG_LEN`] bytes).
    pub fn to_section_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SESSION_TAG_LEN);
        out.extend_from_slice(&self.key_id.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.mac);
        out
    }

    /// Decodes a section body. Trailing bytes are tolerated so the
    /// section can grow compatibly; a short body is an error.
    pub fn from_section_bytes(body: &[u8]) -> Result<Self> {
        if body.len() < SESSION_TAG_LEN {
            return Err(WireError::Truncated("session tag"));
        }
        let mut key_id = [0u8; 8];
        key_id.copy_from_slice(&body[..8]);
        let mut seq = [0u8; 8];
        seq.copy_from_slice(&body[8..16]);
        let mut mac = [0u8; SESSION_TAG_MAC_LEN];
        mac.copy_from_slice(&body[16..16 + SESSION_TAG_MAC_LEN]);
        Ok(SessionTag {
            key_id: u64::from_be_bytes(key_id),
            seq: u64::from_be_bytes(seq),
            mac,
        })
    }
}

/// A routable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Unique (per sender) message id.
    pub id: u64,
    /// Correlates responses to requests (0 = none).
    pub correlation_id: u64,
    /// Routing topic.
    pub topic: Topic,
    /// Sender identifier (entity id, broker id, tracker id).
    pub sender: String,
    /// Send timestamp, ms since epoch.
    pub timestamp_ms: u64,
    /// The body.
    pub payload: Payload,
    /// RSA/SHA-1 signature over [`Message::signable_bytes`].
    pub signature: Option<Vec<u8>>,
    /// Authorization token (required on broker-published traces).
    pub token: Option<AuthorizationToken>,
    /// HMAC-SHA256 under a shared session key (§6.3 optimization;
    /// replaces `signature` on the entity→broker path).
    pub mac: Option<Vec<u8>>,
    /// Causal tracing context (wire v2 trailing section). Not covered
    /// by signatures or MACs — the hop count mutates at every broker
    /// hop, and tampering with it can only corrupt telemetry, never
    /// authorization.
    pub trace: Option<TraceContext>,
    /// Session authentication tag (wire v3 trailing section): an
    /// HMAC-SHA256 over the signable bytes under a negotiated session
    /// key, letting brokers and trackers skip per-message RSA
    /// verification. Self-authenticating (the MAC covers the signed
    /// region), so like `trace` it travels outside the signature.
    pub session: Option<SessionTag>,
}

impl Message {
    /// Creates an unauthenticated message.
    pub fn new(id: u64, topic: Topic, sender: impl Into<String>, timestamp_ms: u64, payload: Payload) -> Self {
        Message {
            id,
            correlation_id: 0,
            topic,
            sender: sender.into(),
            timestamp_ms,
            payload,
            signature: None,
            token: None,
            mac: None,
            trace: None,
            session: None,
        }
    }

    /// Sets the correlation id (builder style).
    pub fn correlated(mut self, correlation_id: u64) -> Self {
        self.correlation_id = correlation_id;
        self
    }

    /// The bytes covered by signatures and MACs: everything except the
    /// authentication fields themselves and the trace context (which
    /// mutates per hop and must not invalidate end-to-end signatures).
    pub fn signable_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.id);
        w.put_u64(self.correlation_id);
        self.topic.encode(&mut w);
        w.put_str(&self.sender);
        w.put_u64(self.timestamp_ms);
        self.payload.encode(&mut w);
        w.into_bytes()
    }

    /// Signs the message with `credential` (SHA-1 + PKCS#1, the
    /// paper's configuration), replacing any existing signature.
    pub fn sign(&mut self, credential: &Credential) -> Result<()> {
        self.signature = Some(credential.sign(&self.signable_bytes())?);
        Ok(())
    }

    /// Verifies the signature against `key`.
    ///
    /// This is the broker's §3.2 check: decrypt the signature with the
    /// sender's public key and compare digests (proof of possession +
    /// tamper evidence).
    pub fn verify_signature(&self, key: &RsaPublicKey) -> Result<()> {
        let sig = self
            .signature
            .as_ref()
            .ok_or(WireError::Truncated("missing signature"))?;
        key.verify(DigestAlgorithm::Sha1, &self.signable_bytes(), sig)
            .map_err(WireError::Crypto)
    }

    /// Authenticates with an HMAC under `session_key` instead of an
    /// RSA signature (§6.3: "encryption/decryption costs are cheaper
    /// than the corresponding signing/verification cost").
    pub fn mac_with(&mut self, session_key: &[u8]) {
        self.mac = Some(hmac::<Sha256>(session_key, &self.signable_bytes()));
    }

    /// Verifies the HMAC under `session_key`.
    pub fn verify_mac(&self, session_key: &[u8]) -> Result<()> {
        let mac = self
            .mac
            .as_ref()
            .ok_or(WireError::Truncated("missing mac"))?;
        if verify_mac(mac, &hmac::<Sha256>(session_key, &self.signable_bytes())) {
            Ok(())
        } else {
            Err(WireError::Crypto(nb_crypto::CryptoError::SignatureMismatch))
        }
    }

    /// Attaches an authorization token (builder style).
    pub fn with_token(mut self, token: AuthorizationToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Attaches a causal tracing context (builder style).
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a session authentication tag (builder style).
    pub fn with_session(mut self, session: SessionTag) -> Self {
        self.session = Some(session);
        self
    }

    /// Whether this message carries a head-sampled trace context —
    /// the guard recorders evaluate before doing any tracing work.
    pub fn trace_sampled(&self) -> bool {
        self.trace.is_some_and(|t| t.sampled)
    }

    /// Encodes in the legacy version-1 layout (no trailing sections,
    /// trace context dropped). Kept for wire-compatibility tests and
    /// for talking to pre-v2 peers.
    pub fn to_v1_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(MIN_WIRE_VERSION);
        self.encode_legacy_body(&mut w);
        w.into_bytes()
    }

    /// Encodes in the legacy version-2 layout (trailing sections, but
    /// no payload length prefix). Kept for wire-compatibility tests
    /// and for talking to pre-v3 peers.
    pub fn to_v2_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(2);
        self.encode_legacy_body(&mut w);
        self.encode_sections(&mut w);
        w.into_bytes()
    }

    /// Encodes every field after the version byte except the
    /// trailing-section block, in the v1/v2 layout (payload not
    /// length-prefixed).
    fn encode_legacy_body(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u64(self.correlation_id);
        self.topic.encode(w);
        w.put_str(&self.sender);
        w.put_u64(self.timestamp_ms);
        self.payload.encode(w);
        self.encode_auth(w);
    }

    /// Encodes the optional authentication trailer (signature, token,
    /// MAC) — identical across all wire versions.
    fn encode_auth(&self, w: &mut Writer) {
        w.put_option(&self.signature, |w, s| w.put_bytes(s));
        w.put_option(&self.token, |w, t| t.encode(w));
        w.put_option(&self.mac, |w, m| w.put_bytes(m));
    }

    /// Encodes the trailing-section block (v2+): count, then
    /// `(tag, length-prefixed body)` pairs.
    fn encode_sections(&self, w: &mut Writer) {
        let count = u64::from(self.trace.is_some()) + u64::from(self.session.is_some());
        w.put_varint(count);
        if let Some(ctx) = &self.trace {
            w.put_u8(SECTION_TRACE);
            w.put_bytes(&encode_trace_section(ctx));
        }
        if let Some(tag) = &self.session {
            w.put_u8(SECTION_SESSION);
            w.put_bytes(&tag.to_section_bytes());
        }
    }
}

/// Encodes a trace context as a section body.
fn encode_trace_section(ctx: &TraceContext) -> Vec<u8> {
    let mut w = Writer::with_capacity(26);
    w.put_u64((ctx.trace_id >> 64) as u64);
    w.put_u64(ctx.trace_id as u64);
    w.put_u64(ctx.parent_span);
    w.put_u8(ctx.hop_count);
    w.put_bool(ctx.sampled);
    w.into_bytes()
}

/// Decodes a trace-section body. Trailing bytes are tolerated so the
/// section itself can grow compatibly.
fn decode_trace_section(body: &[u8]) -> Result<TraceContext> {
    let mut r = Reader::new(body);
    let hi = r.get_u64()?;
    let lo = r.get_u64()?;
    let parent_span = r.get_u64()?;
    let hop_count = r.get_u8()?;
    let sampled = r.get_bool()?;
    Ok(TraceContext {
        trace_id: (u128::from(hi) << 64) | u128::from(lo),
        parent_span,
        hop_count,
        sampled,
    })
}

impl Encode for Message {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(WIRE_VERSION);
        w.put_u64(self.id);
        w.put_u64(self.correlation_id);
        self.topic.encode(w);
        w.put_str(&self.sender);
        w.put_u64(self.timestamp_ms);
        // v3: the payload is u32-length-prefixed so zero-copy parsers
        // can hop over it to the authentication/section trailers.
        let mark = w.reserve_u32();
        self.payload.encode(w);
        let payload_len = w.len() - mark - 4;
        w.patch_u32(mark, payload_len as u32);
        self.encode_auth(w);
        self.encode_sections(w);
    }
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let version = r.get_u8()?;
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let id = r.get_u64()?;
        let correlation_id = r.get_u64()?;
        let topic = Topic::decode(r)?;
        let sender = r.get_str()?;
        let timestamp_ms = r.get_u64()?;
        let payload = if version >= 3 {
            let len = r.get_u32()? as usize;
            if len > crate::codec::MAX_CHUNK_LEN {
                return Err(WireError::LengthOverflow("payload"));
            }
            let body = r.get_exact(len, "payload body")?;
            let mut pr = Reader::new(body);
            let payload = Payload::decode(&mut pr)?;
            pr.expect_end("payload")?;
            payload
        } else {
            Payload::decode(r)?
        };
        let mut msg = Message {
            id,
            correlation_id,
            topic,
            sender,
            timestamp_ms,
            payload,
            signature: r.get_option(|r| r.get_bytes())?,
            token: r.get_option(AuthorizationToken::decode)?,
            mac: r.get_option(|r| r.get_bytes())?,
            trace: None,
            session: None,
        };
        if version >= 2 {
            let sections = r.get_varint()?;
            for _ in 0..sections {
                let tag = r.get_u8()?;
                let body = r.get_bytes_ref()?;
                if tag == SECTION_TRACE && msg.trace.is_none() {
                    msg.trace = Some(decode_trace_section(body)?);
                } else if tag == SECTION_SESSION && msg.session.is_none() {
                    msg.session = Some(SessionTag::from_section_bytes(body)?);
                }
                // Any other tag: an extension from a newer peer — skip.
            }
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::cert::{CertificateAuthority, Validity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    const NOW: u64 = 1_700_000_000_000;

    fn credential() -> &'static Credential {
        static CRED: OnceLock<Credential> = OnceLock::new();
        CRED.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut ca = CertificateAuthority::new(
                "ca",
                512,
                Validity::starting_now(NOW, 1 << 40),
                &mut rng,
            )
            .unwrap();
            ca.issue("entity:msg-test", Validity::starting_now(NOW, 1 << 40), &mut rng)
                .unwrap()
        })
    }

    fn sample() -> Message {
        Message::new(
            7,
            Topic::parse("/Constrained/Traces/Broker/Subscribe-Only/Registration").unwrap(),
            "entity:msg-test",
            NOW,
            Payload::Ping {
                seq: 1,
                sent_at_ms: NOW,
            },
        )
    }

    #[test]
    fn codec_round_trip_plain() {
        let m = sample();
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn codec_round_trip_with_auth_material() {
        let mut m = sample().correlated(42);
        m.sign(credential()).unwrap();
        m.mac_with(b"session-key");
        let back = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.correlation_id, 42);
    }

    #[test]
    fn version_byte_enforced() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 99;
        assert_eq!(Message::from_bytes(&bytes), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn signature_verifies_and_detects_tampering() {
        let cred = credential();
        let mut m = sample();
        m.sign(cred).unwrap();
        m.verify_signature(&cred.certificate.public_key).unwrap();

        let mut tampered = m.clone();
        tampered.sender = "entity:mallory".to_string();
        assert!(tampered
            .verify_signature(&cred.certificate.public_key)
            .is_err());

        let mut payload_swap = m.clone();
        payload_swap.payload = Payload::Ping {
            seq: 2,
            sent_at_ms: NOW,
        };
        assert!(payload_swap
            .verify_signature(&cred.certificate.public_key)
            .is_err());
    }

    #[test]
    fn missing_signature_is_an_error() {
        let m = sample();
        assert!(m
            .verify_signature(&credential().certificate.public_key)
            .is_err());
    }

    #[test]
    fn mac_authentication_round_trip() {
        let key = b"shared-session-key-0123456789ab";
        let mut m = sample();
        m.mac_with(key);
        m.verify_mac(key).unwrap();
        assert!(m.verify_mac(b"wrong-key").is_err());

        let mut tampered = m.clone();
        tampered.timestamp_ms += 1;
        assert!(tampered.verify_mac(key).is_err());
    }

    #[test]
    fn codec_round_trip_with_trace_context() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_cafe_f00d_0123_4567_89ab_cdef,
            parent_span: 99,
            hop_count: 3,
            sampled: true,
        };
        let m = sample().with_trace(ctx);
        let back = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.trace, Some(ctx));
        assert_eq!(back, m);
        assert!(back.trace_sampled());
    }

    #[test]
    fn trace_context_not_covered_by_signature_or_mac() {
        let cred = credential();
        let mut m = sample();
        m.sign(cred).unwrap();
        m.mac_with(b"k");
        // A broker mutating the hop count mid-route must not break
        // end-to-end authentication.
        m.trace = Some(TraceContext::root(1, true).next_hop());
        m.verify_signature(&cred.certificate.public_key).unwrap();
        m.verify_mac(b"k").unwrap();
    }

    #[test]
    fn codec_round_trip_with_session_tag() {
        let tag = SessionTag {
            key_id: 0xfeed_f00d_1234_5678,
            seq: 42,
            mac: [7; SESSION_TAG_MAC_LEN],
        };
        let m = sample().with_session(tag);
        let back = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.session, Some(tag));
        assert_eq!(back, m);
        // Alongside a trace section, both survive.
        let both = m.with_trace(TraceContext::root(5, true));
        let back = Message::from_bytes(&both.to_bytes()).unwrap();
        assert_eq!(back, both);
    }

    #[test]
    fn session_tag_not_covered_by_signature() {
        // Brokers may strip or ignore the session section without
        // breaking end-to-end RSA verification, exactly like the trace
        // section.
        let cred = credential();
        let mut m = sample();
        m.sign(cred).unwrap();
        m.session = Some(SessionTag {
            key_id: 1,
            seq: 0,
            mac: [0; SESSION_TAG_MAC_LEN],
        });
        m.verify_signature(&cred.certificate.public_key).unwrap();
        m.session = None;
        m.verify_signature(&cred.certificate.public_key).unwrap();
    }

    #[test]
    fn truncated_session_section_rejected() {
        let tag = SessionTag {
            key_id: 9,
            seq: 1,
            mac: [1; SESSION_TAG_MAC_LEN],
        };
        let body = tag.to_section_bytes();
        assert_eq!(body.len(), SESSION_TAG_LEN);
        assert_eq!(SessionTag::from_section_bytes(&body).unwrap(), tag);
        for cut in 0..SESSION_TAG_LEN {
            assert!(SessionTag::from_section_bytes(&body[..cut]).is_err());
        }
        // Trailing growth bytes are tolerated.
        let mut grown = body;
        grown.push(0xaa);
        assert_eq!(SessionTag::from_section_bytes(&grown).unwrap(), tag);
    }

    #[test]
    fn signature_does_not_cover_auth_fields() {
        // Attaching a token after signing must not invalidate the
        // signature (tokens are carried alongside, per §4.3).
        let cred = credential();
        let mut m = sample();
        m.sign(cred).unwrap();
        let sig_before = m.signature.clone();
        m.mac_with(b"k");
        assert_eq!(m.signature, sig_before);
        m.verify_signature(&cred.certificate.public_key).unwrap();
    }
}
