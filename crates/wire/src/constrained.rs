//! The constrained-topic grammar (paper §3.1).
//!
//! ```text
//! /Constrained/{Event Type}/{Constrainer}/{Allowed Actions}/{Distribution}/{suffixes…}
//! ```
//!
//! Elements may be omitted, in which case defaults apply — the paper
//! gives `/Constrained/Traces/Limited` and
//! `/Constrained/Traces/Broker/PublishSubscribe/Limited` as equivalent
//! topics. Parsing therefore walks the element slots in order and
//! consumes a segment only when it is plausible for the current slot,
//! falling back to the slot's default otherwise.
//!
//! Element semantics:
//!
//! * **Event Type** — content label, default `RealTime` (traces use
//!   `Traces`).
//! * **Constrainer** — `Broker` (default) or an entity identifier; the
//!   one principal allowed to perform the constrained actions.
//! * **Allowed Actions** — actions ONLY the constrainer may perform:
//!   `Publish-Only` (others may subscribe), `Subscribe-Only` (others
//!   may publish but not subscribe), or `PublishSubscribe` (default —
//!   nobody but the constrainer may do anything).
//! * **Distribution** — `Disseminate` (default) or
//!   `Suppress`/`Limited`: the constrainer's publishes/subscriptions
//!   are not propagated to neighbouring brokers. The paper's examples
//!   spell this element `Limited`; we accept it as a synonym of
//!   `Suppress` and canonicalize to `Limited`.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::WireError;
use crate::topic::Topic;
use crate::Result;
use std::fmt;

/// Leading keyword identifying a constrained topic.
pub const CONSTRAINED_KEYWORD: &str = "Constrained";

/// `{Event Type}` element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventType {
    /// Default event type.
    RealTime,
    /// Availability traces (the tracing scheme's event type).
    Traces,
    /// Any other content label.
    Other(String),
}

impl EventType {
    fn as_str(&self) -> &str {
        match self {
            EventType::RealTime => "RealTime",
            EventType::Traces => "Traces",
            EventType::Other(s) => s,
        }
    }

    fn from_segment(seg: &str) -> Self {
        match seg {
            "RealTime" => EventType::RealTime,
            "Traces" => EventType::Traces,
            other => EventType::Other(other.to_string()),
        }
    }
}

/// `{Constrainer}` element: the principal granted the constrained
/// actions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constrainer {
    /// The broker hosting the traced entity (default).
    Broker,
    /// A specific entity, by identifier.
    Entity(String),
}

impl Constrainer {
    fn as_str(&self) -> &str {
        match self {
            Constrainer::Broker => "Broker",
            Constrainer::Entity(id) => id,
        }
    }
}

/// `{Allowed Actions}` element: actions reserved to the constrainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllowedActions {
    /// Only the constrainer may publish; anyone may subscribe.
    PublishOnly,
    /// Only the constrainer may subscribe; anyone may publish.
    SubscribeOnly,
    /// Only the constrainer may publish *or* subscribe (default).
    #[default]
    PublishSubscribe,
}

impl AllowedActions {
    fn as_str(&self) -> &str {
        match self {
            AllowedActions::PublishOnly => "Publish-Only",
            AllowedActions::SubscribeOnly => "Subscribe-Only",
            AllowedActions::PublishSubscribe => "PublishSubscribe",
        }
    }

    fn from_segment(seg: &str) -> Option<Self> {
        match seg {
            "Publish" | "Publish-Only" | "Publish_Only" | "PublishOnly" => {
                Some(AllowedActions::PublishOnly)
            }
            "Subscribe" | "Subscribe-Only" | "Subscribe_Only" | "SubscribeOnly" => {
                Some(AllowedActions::SubscribeOnly)
            }
            "PublishSubscribe" => Some(AllowedActions::PublishSubscribe),
            _ => None,
        }
    }
}

/// `{Distribution}` element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Distribution {
    /// The constrainer's actions propagate through the broker network
    /// (default).
    #[default]
    Disseminate,
    /// The constrainer's publishes/subscriptions stay on the local
    /// broker (the paper's `Suppress`, spelled `Limited` in examples).
    Suppress,
}

impl Distribution {
    fn as_str(&self) -> &str {
        match self {
            Distribution::Disseminate => "Disseminate",
            Distribution::Suppress => "Limited",
        }
    }

    fn from_segment(seg: &str) -> Option<Self> {
        match seg {
            "Disseminate" => Some(Distribution::Disseminate),
            "Suppress" | "Limited" => Some(Distribution::Suppress),
            _ => None,
        }
    }
}

/// The principal attempting an action on a constrained topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Actor {
    /// A broker node.
    Broker,
    /// An ordinary entity, by identifier.
    Entity(String),
}

/// A pub/sub action subject to constraint checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Publishing a message on the topic.
    Publish,
    /// Registering a subscription to the topic.
    Subscribe,
}

/// A parsed constrained topic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstrainedTopic {
    /// Content label.
    pub event_type: EventType,
    /// Principal allowed the constrained actions.
    pub constrainer: Constrainer,
    /// Which actions are reserved to the constrainer.
    pub allowed_actions: AllowedActions,
    /// Whether the constrainer's actions propagate between brokers.
    pub distribution: Distribution,
    /// Trailing free-form segments (e.g. trace topic + session id).
    pub suffixes: Vec<String>,
}

impl ConstrainedTopic {
    /// Builds a constrained topic with explicit elements.
    pub fn new(
        event_type: EventType,
        constrainer: Constrainer,
        allowed_actions: AllowedActions,
        distribution: Distribution,
        suffixes: Vec<String>,
    ) -> Self {
        ConstrainedTopic {
            event_type,
            constrainer,
            allowed_actions,
            distribution,
            suffixes,
        }
    }

    /// Whether `topic` is a constrained topic (starts with the
    /// `Constrained` keyword).
    pub fn is_constrained(topic: &Topic) -> bool {
        topic.segments().first().map(String::as_str) == Some(CONSTRAINED_KEYWORD)
    }

    /// Parses a [`Topic`] under the defaulting rules described in the
    /// module docs. Returns `Ok(None)` for non-constrained topics.
    pub fn parse(topic: &Topic) -> Result<Option<Self>> {
        if !Self::is_constrained(topic) {
            return Ok(None);
        }
        let segs = &topic.segments()[1..];
        let mut idx = 0;

        // Slot 1: event type. A segment is an event type unless it
        // reads as a later slot's keyword.
        let event_type = match segs.get(idx) {
            Some(seg)
                if seg != "Broker"
                    && AllowedActions::from_segment(seg).is_none()
                    && Distribution::from_segment(seg).is_none() =>
            {
                idx += 1;
                EventType::from_segment(seg)
            }
            _ => EventType::RealTime,
        };

        // Slot 2: constrainer. `Broker` or an entity id (any segment
        // that is not an action/distribution keyword).
        let constrainer = match segs.get(idx) {
            Some(seg) if seg == "Broker" => {
                idx += 1;
                Constrainer::Broker
            }
            Some(seg)
                if AllowedActions::from_segment(seg).is_none()
                    && Distribution::from_segment(seg).is_none()
                    && segs.len() > idx + 1 =>
            {
                // Only treat a free segment as an entity constrainer if
                // more segments follow; a lone trailing free segment is
                // a suffix.
                idx += 1;
                Constrainer::Entity(seg.to_string())
            }
            _ => Constrainer::Broker,
        };

        // Slot 3: allowed actions.
        let allowed_actions = match segs.get(idx).and_then(|s| AllowedActions::from_segment(s)) {
            Some(a) => {
                idx += 1;
                a
            }
            None => AllowedActions::default(),
        };

        // Slot 4: distribution.
        let distribution = match segs.get(idx).and_then(|s| Distribution::from_segment(s)) {
            Some(d) => {
                idx += 1;
                d
            }
            None => Distribution::default(),
        };

        let suffixes = segs[idx..].to_vec();
        Ok(Some(ConstrainedTopic {
            event_type,
            constrainer,
            allowed_actions,
            distribution,
            suffixes,
        }))
    }

    /// Canonical topic form with every element spelled out.
    pub fn to_topic(&self) -> Topic {
        let mut segments = vec![
            CONSTRAINED_KEYWORD.to_string(),
            self.event_type.as_str().to_string(),
            self.constrainer.as_str().to_string(),
            self.allowed_actions.as_str().to_string(),
            self.distribution.as_str().to_string(),
        ];
        segments.extend(self.suffixes.iter().cloned());
        Topic::from_segments(segments).expect("canonical constrained topic is always valid")
    }

    /// Whether `actor` matches this topic's constrainer.
    pub fn is_constrainer(&self, actor: &Actor) -> bool {
        match (&self.constrainer, actor) {
            (Constrainer::Broker, Actor::Broker) => true,
            (Constrainer::Entity(id), Actor::Entity(a)) => id == a,
            _ => false,
        }
    }

    /// Constraint check: may `actor` perform `action` on this topic?
    pub fn permits(&self, actor: &Actor, action: Action) -> bool {
        let reserved = match (self.allowed_actions, action) {
            (AllowedActions::PublishOnly, Action::Publish) => true,
            (AllowedActions::PublishOnly, Action::Subscribe) => false,
            (AllowedActions::SubscribeOnly, Action::Subscribe) => true,
            (AllowedActions::SubscribeOnly, Action::Publish) => false,
            (AllowedActions::PublishSubscribe, _) => true,
        };
        !reserved || self.is_constrainer(actor)
    }

    /// Whether the constrainer's actions should stay on the local
    /// broker (Suppress/Limited distribution).
    pub fn suppressed(&self) -> bool {
        self.distribution == Distribution::Suppress
    }
}

impl fmt::Display for ConstrainedTopic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_topic())
    }
}

impl Encode for ConstrainedTopic {
    fn encode(&self, w: &mut Writer) {
        self.to_topic().encode(w);
    }
}

impl Decode for ConstrainedTopic {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let topic = Topic::decode(r)?;
        ConstrainedTopic::parse(&topic)?
            .ok_or_else(|| WireError::InvalidTopic("not a constrained topic".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ConstrainedTopic {
        ConstrainedTopic::parse(&Topic::parse(s).unwrap())
            .unwrap()
            .expect("constrained")
    }

    #[test]
    fn non_constrained_topics_pass_through() {
        let t = Topic::parse("/Availability/Traces/entity-1").unwrap();
        assert!(ConstrainedTopic::parse(&t).unwrap().is_none());
        assert!(!ConstrainedTopic::is_constrained(&t));
    }

    #[test]
    fn fully_specified_example_from_paper() {
        let c = parse("/Constrained/Traces/Broker/Subscribe-Only/Limited/Trace-Topic");
        assert_eq!(c.event_type, EventType::Traces);
        assert_eq!(c.constrainer, Constrainer::Broker);
        assert_eq!(c.allowed_actions, AllowedActions::SubscribeOnly);
        assert_eq!(c.distribution, Distribution::Suppress);
        assert_eq!(c.suffixes, vec!["Trace-Topic".to_string()]);
    }

    #[test]
    fn paper_equivalence_of_defaulted_forms() {
        // The paper: "/Constrained/Traces/Broker/PublishSubscribe/Limited
        // and /Constrained/Traces/Limited are equivalent topics."
        let full = parse("/Constrained/Traces/Broker/PublishSubscribe/Limited");
        let short = parse("/Constrained/Traces/Limited");
        assert_eq!(full, short);
        assert_eq!(full.to_topic(), short.to_topic());
    }

    #[test]
    fn bare_constrained_topic_is_all_defaults() {
        let c = parse("/Constrained");
        assert_eq!(c.event_type, EventType::RealTime);
        assert_eq!(c.constrainer, Constrainer::Broker);
        assert_eq!(c.allowed_actions, AllowedActions::PublishSubscribe);
        assert_eq!(c.distribution, Distribution::Disseminate);
        assert!(c.suffixes.is_empty());
    }

    #[test]
    fn entity_constrainer_is_recognized() {
        let c = parse("/Constrained/Traces/entity-42/Subscribe-Only/Trace-Topic/Session-1");
        assert_eq!(c.constrainer, Constrainer::Entity("entity-42".to_string()));
        assert_eq!(c.allowed_actions, AllowedActions::SubscribeOnly);
        assert_eq!(c.distribution, Distribution::Disseminate);
        assert_eq!(c.suffixes, vec!["Trace-Topic".to_string(), "Session-1".to_string()]);
    }

    #[test]
    fn derivative_trace_topic_parses() {
        let c = parse("/Constrained/Traces/Broker/Publish-Only/tt-uuid/ChangeNotifications");
        assert_eq!(c.allowed_actions, AllowedActions::PublishOnly);
        assert_eq!(
            c.suffixes,
            vec!["tt-uuid".to_string(), "ChangeNotifications".to_string()]
        );
    }

    #[test]
    fn canonical_round_trip() {
        let c = parse("/Constrained/Traces/Limited");
        let canon = c.to_topic();
        let reparsed = ConstrainedTopic::parse(&canon).unwrap().unwrap();
        assert_eq!(reparsed, c);
    }

    #[test]
    fn publish_only_semantics() {
        let c = parse("/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates");
        // Only brokers publish; everyone may subscribe.
        assert!(c.permits(&Actor::Broker, Action::Publish));
        assert!(!c.permits(&Actor::Entity("e1".into()), Action::Publish));
        assert!(c.permits(&Actor::Entity("e1".into()), Action::Subscribe));
        assert!(c.permits(&Actor::Broker, Action::Subscribe));
    }

    #[test]
    fn subscribe_only_semantics() {
        let c = parse("/Constrained/Traces/Broker/Subscribe-Only/Registration");
        // Only the broker subscribes; entities may publish into it.
        assert!(c.permits(&Actor::Broker, Action::Subscribe));
        assert!(!c.permits(&Actor::Entity("e1".into()), Action::Subscribe));
        assert!(c.permits(&Actor::Entity("e1".into()), Action::Publish));
    }

    #[test]
    fn publish_subscribe_reserves_everything() {
        let c = parse("/Constrained/Traces/Broker/PublishSubscribe/Admin");
        assert!(!c.permits(&Actor::Entity("e1".into()), Action::Publish));
        assert!(!c.permits(&Actor::Entity("e1".into()), Action::Subscribe));
        assert!(c.permits(&Actor::Broker, Action::Publish));
        assert!(c.permits(&Actor::Broker, Action::Subscribe));
    }

    #[test]
    fn entity_constrainer_enforcement() {
        let c = parse("/Constrained/Traces/entity-7/Subscribe-Only/tt/sess");
        assert!(c.permits(&Actor::Entity("entity-7".into()), Action::Subscribe));
        assert!(!c.permits(&Actor::Entity("entity-8".into()), Action::Subscribe));
        assert!(!c.permits(&Actor::Broker, Action::Subscribe));
    }

    #[test]
    fn suppress_detection() {
        assert!(parse("/Constrained/Traces/Limited").suppressed());
        assert!(parse("/Constrained/Traces/Suppress").suppressed());
        assert!(!parse("/Constrained/Traces").suppressed());
    }

    #[test]
    fn underscore_and_hyphen_action_spellings() {
        for s in [
            "/Constrained/Traces/Broker/Subscribe_Only/x",
            "/Constrained/Traces/Broker/Subscribe-Only/x",
            "/Constrained/Traces/Broker/SubscribeOnly/x",
            "/Constrained/Traces/Broker/Subscribe/x",
        ] {
            assert_eq!(parse(s).allowed_actions, AllowedActions::SubscribeOnly, "{s}");
        }
    }

    #[test]
    fn codec_round_trip() {
        let c = parse("/Constrained/Traces/Broker/Publish-Only/tt/Load");
        let bytes = c.to_bytes();
        assert_eq!(ConstrainedTopic::from_bytes(&bytes).unwrap(), c);
    }
}
