//! Chaos test: a secured tracking flow survives the loss and repair of
//! the middle broker↔broker link when link supervision is enabled.
//!
//! Topology is a 3-broker chain — entity at `b0`, tracker at `b2` — so
//! every trace crosses both inter-broker links. Dropping the middle
//! link (`b1 — b2`) mid-trace severs the tracker from the entity; the
//! supervised links must buffer through the outage, reconnect with
//! backoff once the link heals, and replay the buffered traces in
//! order, exactly once.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_transport::supervisor::{LinkState, LinkStats, SupervisorConfig};
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use std::io::Write;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(15);

/// Waits until any broker's supervised-link stats satisfy `pred`,
/// riding each broker's link condition variable
/// ([`nb_broker::Broker::wait_for_link_stats`]) in short deadline
/// slices instead of sleep-polling.
fn wait_any_link(
    dep: &Deployment,
    timeout: Duration,
    pred: impl Fn(&[LinkStats]) -> bool + Copy,
) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        for broker in &dep.network.brokers {
            if broker.wait_for_link_stats(Duration::from_millis(100), pred) {
                return true;
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
    }
}

/// Exercises the TCP oversized-frame guard once so the lazily
/// registered `transport.frame.oversized` counter appears in the
/// process-global registry (and therefore in deployment snapshots).
fn oversized_tcp_probe() {
    let listener = nb_transport::tcp::TcpTransportListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let bogus_len = (nb_transport::endpoint::MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        stream.write_all(&bogus_len).unwrap();
        stream
    });
    let server = listener.accept().unwrap();
    let _stream = writer.join().unwrap();
    assert!(
        server.recv_timeout(Duration::from_secs(5)).is_err(),
        "oversized wire frame must surface an error"
    );
}

#[test]
fn secured_tracking_survives_middle_link_outage() {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    config.link_supervision = Some(SupervisorConfig::fast());
    let dep = Deployment::new(
        Topology::Chain(3),
        LinkConfig::instant(),
        system_clock(),
        config,
    )
    .unwrap();
    assert_eq!(dep.network.link_count(), 2, "chain(3) has two links");

    // Secured entity (sealed trace keys, encrypted payloads) at one
    // end of the chain, tracker at the other.
    let entity = dep
        .traced_entity(
            0,
            "chaos-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            2,
            "chaos-tracker",
            "chaos-entity",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    // Baseline: traces flow end to end across both links.
    assert!(
        tracker.wait_for_status(EntityStatus::Available, WAIT),
        "tracker never converged before the fault"
    );
    assert!(
        tracker.view().wait_until(WAIT, |v| {
            v.get("chaos-entity").is_some_and(|r| r.traces_seen >= 3)
        }),
        "heartbeats never flowed before the fault"
    );
    let before = tracker.view().get("chaos-entity").unwrap();

    // Mid-trace outage: sever the middle link. Heartbeats keep being
    // published — the brokers' supervised links must observe the
    // failure and start buffering.
    assert!(dep.network.drop_link(1), "middle link must be droppable");
    assert!(
        wait_any_link(&dep, WAIT, |stats| {
            stats
                .iter()
                .any(|s| s.send_failures > 0 || s.state != LinkState::Up)
        }),
        "no supervisor observed the outage"
    );

    // Heal the link. Supervisors complete a Down → Reconnecting → Up
    // repair cycle and replay what they buffered.
    assert!(dep.network.restore_link(1));
    assert!(
        wait_any_link(&dep, WAIT, |stats| stats.iter().any(|s| s.reconnects > 0)),
        "no supervised link completed a repair cycle"
    );

    // Reconvergence within the backoff budget: fresh traces reach the
    // tracker and the entity reads Available again.
    assert!(
        tracker.view().wait_until(WAIT, |v| {
            v.get("chaos-entity").is_some_and(|r| {
                r.status == EntityStatus::Available
                    && r.traces_seen >= before.traces_seen + 3
                    && r.last_seq > before.last_seq
            })
        }),
        "tracker failed to reconverge after the outage"
    );

    // No duplication or corruption: per-entity trace seqs are unique
    // and monotonically increasing, so the tracker can never apply
    // more traces than the sequence space that elapsed. (Replay is
    // exactly-once; loss of frames already in flight at drop time is
    // permitted, duplication is not.)
    let after = tracker.view().get("chaos-entity").unwrap();
    assert!(
        after.traces_seen - before.traces_seen <= after.last_seq - before.last_seq,
        "duplicated traces applied: {} applied across {} seqs",
        after.traces_seen - before.traces_seen,
        after.last_seq - before.last_seq
    );
    // The entity's own link (b0, unaffected) never flapped.
    assert!(entity.pings_answered() > 0, "entity stopped answering pings");

    // Observability: the repair cycle and the oversized-frame guard
    // are both visible in one merged deployment snapshot.
    oversized_tcp_probe();
    let snap = dep.metrics_snapshot();
    let reconnects: u64 = dep
        .network
        .brokers
        .iter()
        .map(|b| {
            snap.counter(&format!("{}.broker.link.reconnects", b.id()))
                .unwrap_or(0)
        })
        .sum();
    assert!(
        reconnects > 0,
        "broker.link.reconnects missing from the merged snapshot"
    );
    let supervised: i64 = dep
        .network
        .brokers
        .iter()
        .map(|b| {
            snap.gauge(&format!("{}.broker.links.supervised", b.id()))
                .unwrap_or(0)
        })
        .sum();
    assert!(supervised > 0, "no links report as supervised");
    assert!(
        snap.counter("transport.frame.oversized").unwrap_or(0) > 0,
        "transport.frame.oversized missing from the merged snapshot"
    );
}

#[test]
fn flaky_link_heals_without_supervision_flapping() {
    // A lossy-then-healed link: `flaky` drops frames probabilistically
    // until its deadline, after which the fault self-heals. Supervised
    // links treat a flaky drop as silent loss (the sim reports
    // success), so this exercises the detector's tolerance: the flow
    // must keep converging without tearing anything down.
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    config.link_supervision = Some(SupervisorConfig::fast());
    let dep = Deployment::new(
        Topology::Chain(3),
        LinkConfig::instant(),
        system_clock(),
        config,
    )
    .unwrap();
    let _entity = dep
        .traced_entity(
            0,
            "flaky-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            2,
            "flaky-tracker",
            "flaky-entity",
            vec![TraceCategory::AllUpdates],
        )
        .unwrap();
    assert!(
        tracker.wait_for_status(EntityStatus::Available, WAIT),
        "tracker never converged"
    );
    let before = tracker.view().get("flaky-entity").unwrap().traces_seen;

    // 40% loss on the middle link for 300 ms, then self-heal.
    assert!(dep.network.flaky_link(1, 0.4, Duration::from_millis(300)));
    assert!(
        tracker.view().wait_until(WAIT, |v| {
            v.get("flaky-entity")
                .is_some_and(|r| r.traces_seen >= before + 5)
        }),
        "traces never resumed after the flaky window"
    );
    assert_eq!(
        tracker.view().status("flaky-entity"),
        Some(EntityStatus::Available)
    );
}
