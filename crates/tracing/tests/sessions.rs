//! Full-stack session-key tests: the entity announces an HMAC session
//! key through the RSA-sealed handshake, the engine installs it in the
//! hosting broker's keyring and tags every trace publication, the
//! tracker receives the sealed key and authenticates traces with one
//! HMAC — and rotation swaps keys without interrupting the stream,
//! leaving a signed revocation notice on the audit topic.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use nb_wire::Payload;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

fn session_deployment(max_messages: u64) -> Deployment {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true; // background ticker; real-time tests
    config.tick = Duration::from_millis(10);
    config.session_keys = true;
    config.session_max_messages = max_messages;
    Deployment::new(
        Topology::Chain(2),
        LinkConfig::instant(),
        system_clock(),
        config,
    )
    .unwrap()
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn session_tagged_traces_flow_end_to_end() {
    let dep = session_deployment(1 << 16);
    let monitor = dep.monitors().unwrap();
    let _entity = dep
        .traced_entity(
            0,
            "svc",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "console",
            "svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    // The availability pipeline works as before…
    assert!(wait_until(WAIT, || {
        tracker.view().status("svc") == Some(EntityStatus::Available)
    }));
    // …and the session layer is actually carrying it: the engine
    // adopted the announced key, the tracker received its sealed copy,
    // and traces authenticate by session MAC at both ends.
    assert!(wait_until(WAIT, || {
        dep.engine(0).stats().session_established >= 1
    }));
    assert!(wait_until(WAIT, || tracker.has_session_key()));
    assert!(
        wait_until(WAIT, || tracker.session_verified() >= 3),
        "tracker must authenticate a stream of traces by HMAC"
    );
    let hosting = dep.network.broker(0).metrics_snapshot();
    assert!(
        hosting.counter("broker.session.verified").unwrap_or(0) >= 1,
        "the hosting broker admits tagged traces through the keyring"
    );
    assert_eq!(
        monitor.violation_count(),
        0,
        "clean session traffic must leave the monitors silent"
    );
}

#[test]
fn session_rotation_is_seamless_and_audited() {
    // A six-message budget forces a rotation within the first second
    // of heartbeat traffic.
    let dep = session_deployment(6);
    let audit_rx = {
        let broker = dep.network.broker(0);
        let rx = broker.register_internal("audit-probe");
        broker
            .subscribe_internal("audit-probe", nb_monitor::audit_topic())
            .unwrap();
        rx
    };
    let _entity = dep
        .traced_entity(
            0,
            "rotating",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "watcher",
            "rotating",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    assert!(
        wait_until(WAIT, || dep.engine(0).stats().session_rotations >= 1),
        "spent budget must trigger a rotation"
    );
    // Seamless: the tracker keeps authenticating by session MAC after
    // the swap (the fresh key was delivered before the old one died).
    let verified_at_rotation = tracker.session_verified();
    assert!(
        wait_until(WAIT, || {
            tracker.session_verified() > verified_at_rotation
        }),
        "the tagged stream must continue under the fresh key"
    );
    assert!(tracker.has_session_key());

    // The rotation left a signed revocation notice on the audit topic.
    let deadline = Instant::now() + WAIT;
    let mut audited = false;
    while Instant::now() < deadline {
        let Ok(msg) = audit_rx.recv_timeout(Duration::from_millis(100)) else {
            continue;
        };
        if let Payload::SessionKeyRevoke { key_id, .. } = &msg.payload {
            assert!(*key_id != 0);
            assert!(
                msg.signature.is_some(),
                "audit revocations must be RSA-signed"
            );
            audited = true;
            break;
        }
    }
    assert!(audited, "rotation must publish a revocation on the audit topic");
}
