//! Deployment-level runtime-verification tests: a clean end-to-end
//! run stays violation-free, and causally inconsistent availability
//! verdicts (the reordered-verdict attack) are caught and reported on
//! the audit topic.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_monitor::{audit_topic, VerdictKind, Violation};
use nb_telemetry::{Stage, TraceContext};
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use nb_wire::Payload;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

fn deployment() -> Deployment {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    Deployment::new(
        Topology::Chain(2),
        LinkConfig::instant(),
        system_clock(),
        config,
    )
    .unwrap()
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// A clean run — registration, pings, heartbeats, verdicts, trackers —
/// must produce zero violations while the monitors observe real
/// traffic on every property.
#[test]
fn clean_end_to_end_run_reports_zero_violations() {
    let dep = deployment();
    let monitor = dep.monitors().unwrap();

    let entity = dep
        .traced_entity(
            0,
            "clean-svc",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "clean-ops",
            "clean-svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    // Let real traffic flow: several answered pings and heartbeats
    // reaching the remote tracker.
    assert!(wait_until(WAIT, || entity.pings_answered() >= 3));
    assert!(wait_until(WAIT, || {
        tracker
            .view()
            .get("clean-svc")
            .map(|r| r.traces_seen)
            .unwrap_or(0)
            >= 3
    }));

    // The monitors watched real deliveries, pings and verdicts…
    let snapshot = monitor.metrics_snapshot();
    assert!(
        snapshot.counter("monitor.events").unwrap_or(0) > 0,
        "monitors saw no events"
    );
    // …and none of it violated a property.
    assert_eq!(monitor.violation_count(), 0, "{:?}", monitor.violations());
    assert_eq!(snapshot.counter("monitor.audit.published"), Some(0));
    // The sampled overhead histogram populated (event 0 is sampled).
    assert!(snapshot.histogram("monitor.check_ns").map(|h| h.count).unwrap_or(0) >= 1);

    // The offline span sweep over the whole deployment's telemetry is
    // also clean.
    let mut flagged = 0;
    for node in dep.telemetry_spans() {
        flagged += monitor.check_spans(&node.node, &node.spans);
    }
    assert_eq!(flagged, 0);
    assert_eq!(monitor.violation_count(), 0);
}

/// The reordered-verdict attack: availability verdicts that no ping
/// traffic supports. A verdict about an entity nobody pinged (or a
/// positive verdict with no observed response) is causally
/// inconsistent and must be flagged and reported on the audit topic.
#[test]
fn causally_inconsistent_verdicts_are_caught_on_the_audit_topic() {
    let dep = deployment();
    let monitor = dep.monitors().unwrap();

    // Auditors subscribe to the monitor's audit topic like any client.
    let auditor = dep.network.attach_client(0, "auditor").unwrap();
    auditor.subscribe(audit_topic(), WAIT).unwrap();

    // Real traffic in the background proves the ledger tracks genuine
    // ping causality (no false positives while we attack).
    let entity = dep
        .traced_entity(
            0,
            "causal-svc",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    assert!(wait_until(WAIT, || entity.pings_answered() >= 2));
    assert_eq!(monitor.violation_count(), 0);

    // Inject verdicts about an entity the engine never pinged — the
    // signature of a compromised or reordered verdict stream.
    let node = dep.network.broker(0).id().to_string();
    let now = dep.clock.now_ms();
    monitor.on_verdict(&node, "ghost-entity", VerdictKind::AllsWell, now);
    monitor.on_verdict(&node, "ghost-entity", VerdictKind::Failed, now);

    let violations = monitor.violations();
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations.iter().all(|v| v.property == "causal"));
    assert!(violations[0].detail.contains("supporting ping response"));
    assert!(violations[1].detail.contains("no outstanding unanswered ping"));
    assert_eq!(violations[0].topic, "/Entities/ghost-entity");

    // Both reports arrive signed on the audit topic.
    for _ in 0..2 {
        let msg = auditor.next_message(WAIT).expect("audit report arrives");
        msg.verify_signature(&monitor.certificate().public_key)
            .expect("valid monitor signature");
        let Payload::Blob { data } = &msg.payload else {
            panic!("audit payload should be a violation blob");
        };
        let report = Violation::from_bytes(data).expect("violation decodes");
        assert_eq!(report.property, "causal");
        assert_eq!(report.node, node);
    }
    assert_eq!(
        monitor
            .metrics_snapshot()
            .counter("monitor.violations.causal"),
        Some(2)
    );
}

/// The offline span sweep flags telemetry whose recorded hop count
/// exceeds the TTL bound — the flight-recorder face of property 2.
#[test]
fn span_sweep_flags_out_of_bound_hops() {
    let dep = deployment();
    let monitor = dep.monitors().unwrap();

    let mut ctx = TraceContext::root(0, true);
    ctx.hop_count = 200; // far beyond the default bound of 16
    let span = nb_telemetry::SpanEvent::new(&ctx, Stage::Route, 10, 20);
    // Both hop-bound properties (`ttl` and the strict `ttl-strip`)
    // re-check the recorded hop, so one bad span flags twice.
    let flagged = monitor.check_spans("probe-node", &[span]);
    assert_eq!(flagged, 2);
    let violations = monitor.violations();
    assert_eq!(violations.len(), 2);
    assert_eq!(violations[0].property, "ttl");
    assert_eq!(violations[1].property, "ttl-strip");
    assert!(violations.iter().all(|v| v.node == "probe-node"));
    assert!(violations[0].detail.contains("exceeds"));
}
