//! Deployment-level telemetry plane: every node publishes, the
//! aggregator authenticates frames, tampered frames are dropped, and
//! the health scoreboard follows heartbeat staleness under a mock
//! clock.

use nb_obs::PublisherConfig;
use nb_tracing::config::TracingConfig;
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::{Clock, MockClock};
use nb_transport::sim::LinkConfig;
use nb_wire::Payload;
use std::sync::Arc;
use std::time::Duration;

const START: u64 = 1_700_000_000_000;
const TIMEOUT: Duration = Duration::from_secs(10);

fn deployment(clock: &MockClock, brokers: usize) -> Deployment {
    let shared: Arc<dyn Clock> = Arc::new(clock.clone());
    let mut config = TracingConfig::for_tests();
    config.auto_tick = false;
    Deployment::new(
        Topology::Chain(brokers),
        LinkConfig::instant(),
        shared,
        config,
    )
    .unwrap()
}

fn obs_config() -> PublisherConfig {
    PublisherConfig {
        interval_ms: 1_000,
        full_every: 4,
    }
}

#[test]
fn every_node_publishes_and_the_rollup_spans_all_families() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock, 3);
    let obs = dep.telemetry(obs_config()).unwrap();

    // 3 brokers + 3 engines + 3 TDNs.
    assert_eq!(obs.publishers().len(), 9);

    // Frames race the subscription gossip on the first round; keep
    // publishing until all nine nodes are aggregated.
    let deadline = std::time::Instant::now() + TIMEOUT;
    loop {
        obs.publish_all();
        obs.pump();
        if obs.aggregator().nodes().len() == 9 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {:?} nodes aggregated",
            obs.aggregator().nodes()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The cluster rollup carries every node family.
    let rollup = obs.aggregator().rollup();
    let names: Vec<&str> = rollup.entries().iter().map(|e| e.name.as_str()).collect();
    assert!(names.iter().any(|n| n.starts_with("broker.")));
    assert!(names.iter().any(|n| n.starts_with("tracing.")));
    assert!(names.iter().any(|n| n.starts_with("tdn.")));

    // Everyone just published: the scoreboard reads all-up.
    for health in obs.aggregator().health_report(clock.now_ms()) {
        assert_eq!(health.state.label(), "up", "{} not up", health.node);
    }
}

#[test]
fn ticks_follow_the_mock_clock() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock, 1);
    let obs = dep.telemetry(obs_config()).unwrap();

    assert_eq!(obs.tick(), 0, "nothing due before one interval");
    clock.advance(1_000);
    assert_eq!(obs.tick(), 5, "all publishers fire on the same edge");
    assert_eq!(obs.tick(), 0, "edge-triggered");
    assert!(obs.pump_until_accepted(5, TIMEOUT));
}

#[test]
fn tampered_frames_are_rejected_by_the_aggregator() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock, 1);

    // A spy subscription at broker 0 receives copies of the genuine
    // signed frames — the raw material for the tamper test.
    let home = dep.network.broker(0).clone();
    let spy_rx = home.register_internal("spy");
    home.subscribe_internal("spy", nb_obs::telemetry_topic())
        .unwrap();

    let obs = dep.telemetry(obs_config()).unwrap();
    obs.publish_all();
    assert!(obs.pump_until_accepted(5, TIMEOUT));
    let accepted_view = obs.aggregator().metrics_snapshot();
    let rejected_before = accepted_view.counter("obs.frames.rejected").unwrap_or(0);

    let genuine = spy_rx.recv_timeout(TIMEOUT).expect("spy sees frames");

    // Flipping one payload byte breaks the signature: the aggregator
    // must drop the frame and count the rejection.
    let mut tampered = genuine.clone();
    if let Payload::Blob { data } = &mut tampered.payload {
        data[0] ^= 0xff;
    } else {
        panic!("telemetry frames are blobs");
    }
    assert!(!obs.aggregator().ingest(&tampered));

    // An unsigned forgery on the right topic fails too, even with a
    // well-formed frame inside.
    let forged = nb_wire::Message::new(
        99,
        nb_obs::telemetry_topic(),
        "mallory",
        clock.now_ms(),
        genuine.payload.clone(),
    );
    assert!(!obs.aggregator().ingest(&forged));

    let after = obs.aggregator().metrics_snapshot();
    assert_eq!(
        after.counter("obs.frames.rejected").unwrap_or(0),
        rejected_before + 2
    );

    // The genuine copy (already ingested via the plane's own
    // subscription) left per-node totals intact.
    assert_eq!(obs.aggregator().nodes().len(), 5);
}

#[test]
fn health_scoreboard_tracks_heartbeat_staleness() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock, 1);
    let obs = dep.telemetry(obs_config()).unwrap();

    obs.publish_all();
    assert!(obs.pump_until_accepted(5, TIMEOUT));

    // Nothing published for 3 intervals: degraded. 6: down.
    let t = clock.now_ms();
    assert!(obs
        .aggregator()
        .health_report(t + 3_000)
        .iter()
        .all(|h| h.state.label() == "degraded"));
    assert!(obs
        .aggregator()
        .health_report(t + 6_000)
        .iter()
        .all(|h| h.state.label() == "down"));

    // A fresh round of heartbeats brings every node back up and
    // counts one flap apiece.
    clock.advance(6_000);
    obs.publish_all();
    assert!(obs.pump_until_accepted(10, TIMEOUT));
    for health in obs.aggregator().health_report(clock.now_ms()) {
        assert_eq!(health.state.label(), "up");
        assert_eq!(health.flaps, 1, "{} should have flapped once", health.node);
    }
}
