//! The same tracking flow over every medium of §6.1: simulated links,
//! real TCP, and real UDP over loopback.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_broker::network::Medium;
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use std::time::{Duration, Instant};

fn run_flow(medium: Medium) {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    let dep = Deployment::over(Topology::Chain(2), medium, system_clock(), config).unwrap();
    let entity = dep
        .traced_entity(
            0,
            "xport-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "xport-tracker",
            "xport-entity",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    // Condition-based waits: both ride condition variables (the
    // tracker's availability view, the entity's ping signal) instead
    // of the 10 ms sleep-poll loop this used to be.
    let deadline = Instant::now() + Duration::from_secs(15);
    assert!(
        tracker.wait_for_status(EntityStatus::Available, Duration::from_secs(15)),
        "tracker never saw the entity over {medium:?}"
    );
    assert!(
        entity.wait_for_pings(2, deadline.saturating_duration_since(Instant::now())),
        "pings stalled over {medium:?}"
    );
}

#[test]
fn tracking_over_simulated_links() {
    run_flow(Medium::Sim(LinkConfig::instant()));
}

#[test]
fn tracking_over_real_tcp() {
    run_flow(Medium::Tcp);
}

#[test]
fn tracking_over_real_udp() {
    run_flow(Medium::Udp);
}
