//! Deterministic engine tests: a mock clock plus manual `tick_now`
//! drives every timing-dependent behaviour with zero wall-clock
//! sensitivity.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::Liveness;
use nb_transport::clock::{Clock, MockClock};
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use std::sync::Arc;
use std::time::Duration;

const START: u64 = 1_700_000_000_000;

/// Config with the background ticker disabled: time moves only when
/// the test advances the mock clock and calls `tick_now`.
fn manual_config() -> TracingConfig {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = false;
    // Generous thresholds so the numbers below are easy to follow:
    // ping every 100 ms, loss after 50 ms, suspect at 2, fail at +2.
    config
}

fn deployment(clock: &MockClock) -> Deployment {
    let shared: Arc<dyn Clock> = Arc::new(clock.clone());
    Deployment::new(
        Topology::Chain(1),
        LinkConfig::instant(),
        shared,
        manual_config(),
    )
    .unwrap()
}

/// Message pumps still run on real threads; give them a moment to
/// drain after each virtual-time step.
fn settle() {
    std::thread::sleep(Duration::from_millis(40));
}

#[test]
fn failure_detection_follows_virtual_time_exactly() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock);
    let entity = dep
        .traced_entity(
            0,
            "det-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    settle();
    dep.tick_all(); // first ping goes out
    settle();
    assert_eq!(entity.pings_answered(), 1);
    assert_eq!(
        dep.engine(0).liveness_of("det-entity"),
        Some(Liveness::Alive)
    );

    // Crash the entity, then march virtual time forward. With
    // suspicion_threshold=2 / failure_threshold=2, four expired pings
    // escalate Alive → Suspected → Failed.
    entity.stop();
    settle();
    let mut suspected_at = None;
    let mut failed_at = None;
    for step in 1..=40 {
        clock.advance(100);
        dep.tick_all();
        settle();
        match dep.engine(0).liveness_of("det-entity") {
            Some(Liveness::Suspected) if suspected_at.is_none() => {
                suspected_at = Some(step);
            }
            Some(Liveness::Failed) => {
                failed_at = Some(step);
                break;
            }
            _ => {}
        }
    }
    let suspected_at = suspected_at.expect("suspicion never fired");
    let failed_at = failed_at.expect("failure never fired");
    assert!(suspected_at < failed_at);
    let stats = dep.engine(0).stats();
    assert_eq!(stats.suspicions, 1);
    assert_eq!(stats.failures, 1);
    // Failed entities stop being pinged.
    let pings_at_failure = dep.engine(0).stats().pings_sent;
    clock.advance(1000);
    dep.tick_all();
    settle();
    assert_eq!(dep.engine(0).stats().pings_sent, pings_at_failure);
}

#[test]
fn heartbeats_track_ping_count_deterministically() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock);
    let entity = dep
        .traced_entity(
            0,
            "hb-det",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            0,
            "hb-watch",
            "hb-det",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
        )
        .unwrap();
    settle();

    // 5 ping rounds → 5 answered pings → 5 ALLS_WELL heartbeats.
    for _ in 0..5 {
        dep.tick_all();
        settle();
        clock.advance(100);
    }
    assert_eq!(entity.pings_answered(), 5);
    let heartbeats = tracker
        .view()
        .get("hb-det")
        .map(|r| r.traces_seen)
        .unwrap_or(0);
    // JOIN + 5 heartbeats (exact: no timing jitter in virtual time).
    assert!(
        (5..=7).contains(&heartbeats),
        "expected ~6 traces, saw {heartbeats}"
    );
}

#[test]
fn interest_expires_when_probes_go_unanswered() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock);
    let _entity = dep
        .traced_entity(
            0,
            "exp-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            0,
            "exp-tracker",
            "exp-entity",
            vec![TraceCategory::AllUpdates],
        )
        .unwrap();
    settle();
    dep.tick_all();
    settle();
    assert_eq!(dep.engine(0).interest_count("exp-entity"), 1);

    // The tracker dies silently; after > 4 gauge intervals its
    // interest entry must lapse.
    tracker.stop();
    settle();
    // gauge_interval (test config) = 500 ms; TTL = 4×500 ms.
    for _ in 0..8 {
        clock.advance(500);
        dep.tick_all();
        settle();
    }
    assert_eq!(
        dep.engine(0).interest_count("exp-entity"),
        0,
        "stale tracker interest must expire"
    );
}

#[test]
fn live_tracker_interest_survives_expiry_rounds() {
    let clock = MockClock::new(START);
    let dep = deployment(&clock);
    let _entity = dep
        .traced_entity(
            0,
            "sur-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let _tracker = dep
        .tracker(
            0,
            "sur-tracker",
            "sur-entity",
            vec![TraceCategory::AllUpdates],
        )
        .unwrap();
    settle();
    dep.tick_all();
    settle();
    // Many probe rounds: the live tracker keeps answering, so its
    // interest must persist.
    for _ in 0..8 {
        clock.advance(500);
        dep.tick_all();
        settle();
    }
    assert_eq!(dep.engine(0).interest_count("sur-entity"), 1);
}

#[test]
fn adaptive_interval_hastens_detection() {
    // Same crash, two configurations; the adaptive detector must need
    // no more virtual time than the fixed one.
    fn time_to_failure(adaptive: bool) -> u64 {
        let clock = MockClock::new(START);
        let shared: Arc<dyn Clock> = Arc::new(clock.clone());
        let mut config = manual_config();
        if !adaptive {
            config.min_ping_interval = config.ping_interval;
        }
        let dep = Deployment::new(
            Topology::Chain(1),
            LinkConfig::instant(),
            shared,
            config,
        )
        .unwrap();
        let entity = dep
            .traced_entity(
                0,
                "adapt",
                DiscoveryRestrictions::Open,
                SigningMode::RsaSign,
                false,
            )
            .unwrap();
        settle();
        dep.tick_all();
        settle();
        entity.stop();
        settle();
        let mut elapsed = 0;
        loop {
            clock.advance(10);
            elapsed += 10;
            dep.tick_all();
            if dep.engine(0).liveness_of("adapt") == Some(Liveness::Failed) {
                return elapsed;
            }
            assert!(elapsed < 60_000, "never failed");
        }
    }
    let adaptive = time_to_failure(true);
    let fixed = time_to_failure(false);
    assert!(
        adaptive <= fixed,
        "adaptive ({adaptive} ms) must not be slower than fixed ({fixed} ms)"
    );
}
