//! Property-based tests on the tracing layer's pure state machines.

use nb_crypto::Uuid;
use nb_tracing::config::TracingConfig;
use nb_tracing::failure::{DetectorEvent, FailureDetector, Liveness};
use nb_tracing::view::{AvailabilityView, EntityStatus};
use nb_wire::trace::{EntityState, TraceEvent, TraceKind};
use proptest::prelude::*;

fn config() -> TracingConfig {
    TracingConfig::for_tests()
}

/// A random driver action against the failure detector.
#[derive(Debug, Clone)]
enum Action {
    /// Advance virtual time by this many ms and tick.
    Tick(u64),
    /// Send a ping if one is due.
    PingIfDue,
    /// Answer the ping with this sequence offset into outstanding.
    AnswerLatest,
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..400).prop_map(Action::Tick),
            Just(Action::PingIfDue),
            Just(Action::AnswerLatest),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Liveness transitions are well-formed under ANY schedule:
    /// Suspect only from Alive, Fail only from Suspected, Recover only
    /// on a response, and the detector never panics.
    #[test]
    fn detector_state_machine_is_well_formed(actions in arb_actions()) {
        let mut d = FailureDetector::new(&config());
        let mut now = 0u64;
        let mut last_seq = None;
        for action in actions {
            let before = d.liveness();
            match action {
                Action::Tick(ms) => {
                    now += ms;
                    match d.on_tick(now) {
                        Some(DetectorEvent::Suspect) => {
                            prop_assert_eq!(before, Liveness::Alive);
                            prop_assert_eq!(d.liveness(), Liveness::Suspected);
                        }
                        Some(DetectorEvent::Fail) => {
                            prop_assert_eq!(before, Liveness::Suspected);
                            prop_assert_eq!(d.liveness(), Liveness::Failed);
                        }
                        Some(DetectorEvent::Recover) => {
                            prop_assert!(false, "tick cannot recover");
                        }
                        None => {}
                    }
                }
                Action::PingIfDue => {
                    if d.ping_due(now) {
                        last_seq = Some(d.on_ping_sent(now));
                    }
                }
                Action::AnswerLatest => {
                    if let Some(seq) = last_seq.take() {
                        now += 1;
                        match d.on_response(seq, now) {
                            Some(DetectorEvent::Recover) => {
                                prop_assert_ne!(before, Liveness::Alive);
                                prop_assert_eq!(d.liveness(), Liveness::Alive);
                            }
                            Some(_) => prop_assert!(false, "response can only recover"),
                            // None: either the ping was already expired
                            // (unknown seq — state unchanged) or the
                            // entity was Alive all along.
                            None => prop_assert_eq!(d.liveness(), before),
                        }
                    }
                }
            }
        }
    }

    /// The adaptive interval never exceeds the base interval and never
    /// drops below the configured floor.
    #[test]
    fn adaptive_interval_stays_in_bounds(actions in arb_actions()) {
        let cfg = config();
        let base = cfg.ping_interval.as_millis() as u64;
        let floor = cfg.min_ping_interval.as_millis() as u64;
        let mut d = FailureDetector::new(&cfg);
        let mut now = 0u64;
        for action in actions {
            match action {
                Action::Tick(ms) => {
                    now += ms;
                    let _ = d.on_tick(now);
                }
                Action::PingIfDue => {
                    if d.ping_due(now) {
                        d.on_ping_sent(now);
                    }
                }
                Action::AnswerLatest => {}
            }
            let interval = d.current_interval_ms();
            prop_assert!(interval <= base, "interval {interval} > base {base}");
            prop_assert!(interval >= floor, "interval {interval} < floor {floor}");
        }
    }

    /// An entity that answers every ping promptly is never suspected,
    /// regardless of the ping schedule.
    #[test]
    fn responsive_entity_never_suspected(gaps in proptest::collection::vec(1u64..2_000, 1..80)) {
        let mut d = FailureDetector::new(&config());
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            prop_assert!(d.on_tick(now).is_none());
            if d.ping_due(now) {
                let seq = d.on_ping_sent(now);
                // Answer instantly — before any timeout can expire.
                prop_assert!(d.on_response(seq, now + 1).is_none());
            }
            prop_assert_eq!(d.liveness(), Liveness::Alive);
        }
    }

    /// The availability view applies any stream of events without
    /// panicking, ends in a status consistent with the
    /// highest-sequence event, and never counts stale events.
    #[test]
    fn view_is_consistent_under_event_storms(
        seqs in proptest::collection::vec((1u64..100, 0u8..7), 1..100)
    ) {
        let view = AvailabilityView::new();
        let mut max_seq_applied = 0u64;
        let mut applied = 0u64;
        for (seq, kind_idx) in seqs {
            let kind = match kind_idx {
                0 => TraceKind::Join,
                1 => TraceKind::AllsWell,
                2 => TraceKind::FailureSuspicion,
                3 => TraceKind::Failed,
                4 => TraceKind::Disconnect,
                5 => TraceKind::RevertingToSilentMode,
                _ => TraceKind::StateTransition { from: None, to: EntityState::Ready },
            };
            let stale = seq < max_seq_applied;
            view.apply(&TraceEvent {
                entity_id: "e".to_string(),
                trace_topic: Uuid::nil(),
                seq,
                timestamp_ms: 1000 + seq,
                kind,
            });
            if !stale {
                max_seq_applied = max_seq_applied.max(seq);
                applied += 1;
            }
        }
        prop_assert_eq!(view.total_traces(), applied);
        prop_assert!(view.status("e").is_some());
        // Status is one of the defined verdicts (no corruption).
        let status = view.status("e").unwrap();
        prop_assert!(matches!(
            status,
            EntityStatus::Available
                | EntityStatus::Suspected
                | EntityStatus::Failed
                | EntityStatus::Offline
        ));
    }
}
