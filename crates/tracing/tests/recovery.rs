//! Kill-and-restart recovery: each node kind (tracker, broker, TDN)
//! dies mid-workload and comes back over the same data directory,
//! recovering to a consistent view.
//!
//! Deterministic: simulated transport plus a `MockClock` everywhere —
//! time only moves when the test advances it, so the pre-crash state,
//! the crash point, and the reconvergence window are all scripted.
//!
//! What "consistent" means per node:
//!
//! * **tracker** — the availability view equals the pre-crash fold
//!   (same status, `last_seq`, `traces_seen`: nothing lost, nothing
//!   double-applied), then fresh traces resume and the exactly-once
//!   invariant `Δtraces_seen ≤ Δlast_seq` keeps holding;
//! * **broker** — client subscriptions survive the crash (crash ≠
//!   orderly disconnect), a re-attaching client resumes deliveries
//!   without re-subscribing, and a fresh neighbour learns the
//!   recovered filters through the ordinary handshake;
//! * **TDN** — the signed advertisement registry and the replication
//!   epoch survive, provenance (original TDN signatures) intact,
//!   purges not resurrected.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_broker::{Broker, BrokerClient, BrokerConfig};
use nb_crypto::cert::{CertificateAuthority, Validity};
use nb_store::{StoreConfig, TempDir};
use nb_tdn::Tdn;
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::{Clock, MockClock, SharedClock};
use nb_transport::sim::{LinkConfig, SimNetwork};
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use nb_wire::{Payload, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const START: u64 = 1_700_000_000_000;
const WAIT: Duration = Duration::from_secs(10);

/// Message pumps still run on real threads; give them a moment to
/// drain after each virtual-time step.
fn settle() {
    std::thread::sleep(Duration::from_millis(40));
}

fn topic(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

/// Advances virtual time in 100 ms steps, ticking every engine, until
/// `pred` holds or `max_steps` elapse.
fn pump_until(
    clock: &MockClock,
    dep: &Deployment,
    max_steps: u32,
    pred: impl Fn() -> bool,
) -> bool {
    for _ in 0..max_steps {
        if pred() {
            return true;
        }
        clock.advance(100);
        dep.tick_all();
        settle();
    }
    pred()
}

#[test]
fn tracker_restart_recovers_view_exactly_once() {
    let clock = MockClock::new(START);
    let shared: Arc<dyn Clock> = Arc::new(clock.clone());
    let mut config = TracingConfig::for_tests();
    config.auto_tick = false;
    let dep = Deployment::new(
        Topology::Chain(1),
        LinkConfig::instant(),
        shared,
        config,
    )
    .unwrap();
    let entity = dep
        .traced_entity(
            0,
            "rec-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let dir = TempDir::new("tracker-restart").unwrap();
    let tracker = dep
        .tracker_with_dir(
            0,
            "rec-tracker",
            "rec-entity",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
            Some(dir.path().to_path_buf()),
        )
        .unwrap();
    assert!(
        tracker.recovery().unwrap().started_fresh,
        "first incarnation must start from an empty store"
    );

    // Mid-workload: several heartbeat rounds land before the kill.
    settle();
    assert!(
        pump_until(&clock, &dep, 40, || {
            tracker
                .view()
                .get("rec-entity")
                .is_some_and(|r| r.traces_seen >= 4)
        }),
        "traces never flowed before the kill"
    );
    let before = tracker.view().get("rec-entity").unwrap();
    assert_eq!(before.status, EntityStatus::Available);

    // Kill: stop the pump and drop the handle — no checkpoint, no
    // goodbye. Everything recoverable is already in the WAL.
    tracker.stop();
    drop(tracker);
    settle();

    // Restart over the same directory, same identity.
    let tracker = dep
        .tracker_with_dir(
            0,
            "rec-tracker",
            "rec-entity",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
            Some(dir.path().to_path_buf()),
        )
        .unwrap();
    let rec = tracker.recovery().unwrap();
    assert!(!rec.started_fresh, "restart must find the journal");
    assert!(!rec.repaired(), "clean kill must not need repair");
    assert_eq!(
        rec.snapshot_seq + rec.records_replayed,
        before.traces_seen,
        "exactly the applied events must replay"
    );

    // The recovered view is the pre-crash fold, bit for bit: nothing
    // lost (no missing verdicts), nothing double-applied.
    let recovered = tracker.view().get("rec-entity").expect("view recovered");
    assert_eq!(recovered.status, before.status);
    assert_eq!(recovered.last_seq, before.last_seq);
    assert_eq!(recovered.traces_seen, before.traces_seen);

    // Reconvergence: fresh traces resume on top of the recovered view.
    assert!(
        pump_until(&clock, &dep, 40, || {
            tracker
                .view()
                .get("rec-entity")
                .is_some_and(|r| r.traces_seen >= before.traces_seen + 3)
        }),
        "traces never resumed after the restart"
    );
    let after = tracker.view().get("rec-entity").unwrap();
    assert_eq!(after.status, EntityStatus::Available);
    // Exactly-once across the whole crash: applied count can never
    // outrun the sequence space that elapsed.
    assert!(
        after.traces_seen - before.traces_seen <= after.last_seq - before.last_seq,
        "duplicated traces after restart: {} applied across {} seqs",
        after.traces_seen - before.traces_seen,
        after.last_seq - before.last_seq
    );
    assert!(entity.pings_answered() > 0);
}

#[test]
fn broker_crash_restart_restores_subscriptions_and_resyncs() {
    let clock: SharedClock = Arc::new(MockClock::new(START));
    let net = SimNetwork::new(0x4ec0);
    let dir = TempDir::new("broker-restart").unwrap();
    let cfg = BrokerConfig {
        data_dir: Some(dir.path().to_path_buf()),
        ..BrokerConfig::default()
    };

    // First incarnation: a consumer subscribes, a publisher delivers.
    let broker = Broker::new("b-dur", clock.clone(), cfg.clone());
    assert!(broker.recovery().unwrap().started_fresh);
    let (s, c) = net.symmetric_link(LinkConfig::instant());
    broker.attach_client(s);
    let consumer = BrokerClient::attach(c, "rec-consumer", clock.clone(), WAIT).unwrap();
    consumer.subscribe(topic("chat/room"), WAIT).unwrap();
    let (s, c) = net.symmetric_link(LinkConfig::instant());
    broker.attach_client(s);
    let publisher = BrokerClient::attach(c, "rec-publisher", clock.clone(), WAIT).unwrap();
    publisher
        .publish(topic("chat/room"), Payload::Blob { data: vec![1] })
        .unwrap();
    let msg = consumer.next_message(WAIT).unwrap();
    assert!(matches!(msg.payload, Payload::Blob { ref data } if data == &[1]));

    // Crash mid-workload: journalling stops *before* the teardown, so
    // the ConsumerGone cleanup the dying workers run never reaches the
    // log — the crash semantics that let clients re-attach.
    broker.simulate_crash();
    drop(consumer);
    drop(publisher);
    drop(broker);
    settle();

    // Second incarnation over the same directory.
    let broker = Broker::new("b-dur", clock.clone(), cfg);
    let rec = broker.recovery().unwrap();
    assert!(!rec.started_fresh, "restart must find the journal");
    assert!(
        rec.snapshot_seq + rec.records_replayed >= 1,
        "the subscription op must have survived: {rec:?}"
    );

    // The consumer re-attaches under its old id and resumes deliveries
    // WITHOUT re-subscribing: the subscription came off the log.
    let (s, c) = net.symmetric_link(LinkConfig::instant());
    broker.attach_client(s);
    let consumer = BrokerClient::attach(c, "rec-consumer", clock.clone(), WAIT).unwrap();

    // A fresh neighbour learns the recovered filter purely through the
    // ordinary handshake — subscription re-sync after restart.
    let peer = Broker::new("b-peer", clock.clone(), BrokerConfig::default());
    let (a, b) = net.symmetric_link(LinkConfig::instant());
    broker.connect_neighbor(a);
    peer.connect_neighbor(b);
    assert!(
        peer.wait_for_remote_subscription(&topic("chat/room"), WAIT),
        "recovered subscription never re-advertised to the new neighbour"
    );

    // End to end across the mesh: publish at the peer, deliver to the
    // re-attached consumer through the restarted broker.
    let (s, c) = net.symmetric_link(LinkConfig::instant());
    peer.attach_client(s);
    let publisher = BrokerClient::attach(c, "peer-publisher", clock.clone(), WAIT).unwrap();
    publisher
        .publish(topic("chat/room"), Payload::Blob { data: vec![2] })
        .unwrap();
    let msg = consumer.next_message(WAIT).unwrap();
    assert!(
        matches!(msg.payload, Payload::Blob { ref data } if data == &[2]),
        "delivery must resume without a fresh subscribe"
    );
}

#[test]
fn tdn_restart_recovers_registry_provenance_and_epoch() {
    let mock = MockClock::new(START);
    let clock: SharedClock = Arc::new(mock.clone());
    let mut rng = StdRng::seed_from_u64(0x4ec1);
    let validity = Validity::starting_now(START - 60_000, u64::MAX / 4);
    let bits = TracingConfig::for_tests().rsa_bits;
    let mut ca = CertificateAuthority::new("rec-ca", bits, validity, &mut rng).unwrap();
    let ca_key = ca.certificate().public_key.clone();
    let tdn_cred = ca.issue("tdn-rec", validity, &mut rng).unwrap();
    let owner = ca.issue("owner", validity, &mut rng).unwrap();

    let dir = TempDir::new("tdn-restart").unwrap();
    let tdn = Tdn::new("tdn-rec", tdn_cred.clone(), ca_key.clone(), clock.clone(), 1);
    let rec0 = tdn.persist_to(dir.path(), StoreConfig::default()).unwrap();
    assert!(rec0.started_fresh);

    // Mid-workload: two local creations (one short-lived), one
    // verified replica from a peer, then an expiry sweep.
    tdn.create_topic(&owner.certificate, "entity/one", DiscoveryRestrictions::Open, 0)
        .unwrap();
    tdn.create_topic(
        &owner.certificate,
        "entity/ephemeral",
        DiscoveryRestrictions::Open,
        10,
    )
    .unwrap();
    let peer_cred = ca.issue("tdn-peer", validity, &mut rng).unwrap();
    let peer = Tdn::new("tdn-peer", peer_cred, ca_key.clone(), clock.clone(), 2);
    tdn.add_peer("tdn-peer", peer.public_key());
    let replica = peer
        .create_topic(&owner.certificate, "entity/three", DiscoveryRestrictions::Open, 0)
        .unwrap();
    tdn.replicate(replica).unwrap();

    mock.advance(60_000);
    assert_eq!(tdn.purge_expired(), 1, "the ephemeral topic must expire");
    assert_eq!(tdn.advert_count(), 2);
    assert_eq!(tdn.replication_epoch(), 3, "three installs ever");
    let key_before = tdn.public_key();
    drop(tdn);

    // Restart over the same directory.
    let tdn = Tdn::new("tdn-rec", tdn_cred, ca_key, clock, 1);
    let rec = tdn.persist_to(dir.path(), StoreConfig::default()).unwrap();
    assert!(!rec.started_fresh);
    assert!(!rec.repaired());
    assert_eq!(tdn.advert_count(), 2, "registry must recover");
    assert_eq!(tdn.replication_epoch(), 3, "epoch must resume, not reset");

    // Provenance survives: recovered advertisements still verify
    // against their *original* signer keys.
    let found = tdn.discover("entity/one", &owner.certificate);
    assert_eq!(found.len(), 1);
    assert!(found[0].verify(&key_before).is_ok(), "local signature lost");
    let found = tdn.discover("entity/three", &owner.certificate);
    assert_eq!(found.len(), 1);
    assert!(
        found[0].verify(&peer.public_key()).is_ok(),
        "replica provenance lost"
    );
    // Purges are not resurrected by replay.
    assert!(
        tdn.discover("entity/ephemeral", &owner.certificate).is_empty(),
        "purged advert came back from the dead"
    );
}
