//! End-to-end tracing-scheme tests on full deployments: registration,
//! heartbeats, failure detection, authorization, secured traces, and
//! the §6.3 optimization.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_tracing::Liveness;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::{EntityState, LoadInformation, TraceCategory};
use std::time::{Duration, Instant};

fn deployment(topology: Topology) -> Deployment {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true; // background ticker; real-time tests
    config.tick = Duration::from_millis(10);
    Deployment::new(topology, LinkConfig::instant(), system_clock(), config).unwrap()
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

const WAIT: Duration = Duration::from_secs(10);

#[test]
fn entity_registers_and_tracker_sees_it_available() {
    let dep = deployment(Topology::Chain(2));
    let _entity = dep
        .traced_entity(
            0,
            "web-service",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    assert_eq!(dep.engine(0).session_count(), 1);
    assert!(wait_until(WAIT, || dep.engine(0).has_token("web-service")));

    let tracker = dep
        .tracker(
            1,
            "ops-console",
            "web-service",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    // JOIN (change notification) or ALLS_WELL must surface the entity.
    assert!(wait_until(WAIT, || {
        tracker.view().status("web-service") == Some(EntityStatus::Available)
    }));
    assert!(tracker.traces_applied() >= 1);
}

#[test]
fn heartbeats_flow_to_interested_trackers() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "hb-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(1, "hb-tracker", "hb-entity", vec![TraceCategory::AllUpdates])
        .unwrap();

    assert!(wait_until(WAIT, || entity.pings_answered() >= 3));
    assert!(wait_until(WAIT, || {
        tracker.view().get("hb-entity").map(|r| r.traces_seen).unwrap_or(0) >= 3
    }));
    assert_eq!(
        dep.engine(0).liveness_of("hb-entity"),
        Some(Liveness::Alive)
    );
}

#[test]
fn crashed_entity_is_suspected_then_failed() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "crasher",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "watcher",
            "crasher",
            vec![TraceCategory::ChangeNotifications],
        )
        .unwrap();
    assert!(wait_until(WAIT, || entity.pings_answered() >= 2));

    // Simulate a crash: stop answering pings.
    entity.stop();

    assert!(wait_until(WAIT, || {
        tracker.view().status("crasher") == Some(EntityStatus::Suspected)
            || tracker.view().status("crasher") == Some(EntityStatus::Failed)
    }));
    assert!(wait_until(WAIT, || {
        tracker.view().status("crasher") == Some(EntityStatus::Failed)
    }));
    assert_eq!(dep.engine(0).liveness_of("crasher"), Some(Liveness::Failed));
    let stats = dep.engine(0).stats();
    assert!(stats.suspicions >= 1);
    assert!(stats.failures >= 1);
}

#[test]
fn state_transitions_and_load_reports_propagate() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "stateful",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "state-watcher",
            "stateful",
            vec![
                TraceCategory::StateTransitions,
                TraceCategory::Load,
                TraceCategory::ChangeNotifications,
            ],
        )
        .unwrap();
    // Wait for the tracker's interest to register at the engine.
    assert!(wait_until(WAIT, || dep.engine(0).interest_count("stateful") >= 1));

    entity.set_state(EntityState::Recovering).unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().get("stateful").and_then(|r| r.state) == Some(EntityState::Recovering)
    }));

    entity
        .report_load(LoadInformation {
            cpu_percent: 73.5,
            memory_used_bytes: 3 << 30,
            memory_total_bytes: 8 << 30,
            workload: 12,
        })
        .unwrap();
    assert!(wait_until(WAIT, || {
        tracker
            .view()
            .get("stateful")
            .and_then(|r| r.load)
            .map(|l| l.cpu_percent == 73.5)
            .unwrap_or(false)
    }));
}

#[test]
fn silent_mode_marks_entity_offline() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "quitter",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "quit-watcher",
            "quitter",
            vec![TraceCategory::ChangeNotifications],
        )
        .unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().status("quitter") == Some(EntityStatus::Available)
    }));

    entity.go_silent().unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().status("quitter") == Some(EntityStatus::Offline)
    }));
    // The engine dropped the session.
    assert!(wait_until(WAIT, || dep.engine(0).session_count() == 0));
}

#[test]
fn unauthorized_tracker_cannot_even_discover_the_topic() {
    let dep = deployment(Topology::Chain(2));
    let _entity = dep
        .traced_entity(
            0,
            "private-entity",
            DiscoveryRestrictions::AllowedSubjects(vec!["tracker:friend".to_string()]),
            SigningMode::RsaSign,
            false,
        )
        .unwrap();

    // The authorized tracker works.
    let friend = dep.tracker(
        1,
        "friend",
        "private-entity",
        vec![TraceCategory::ChangeNotifications],
    );
    assert!(friend.is_ok());

    // The stranger's discovery is silently ignored.
    let stranger = dep.tracker(
        1,
        "stranger",
        "private-entity",
        vec![TraceCategory::ChangeNotifications],
    );
    assert!(matches!(
        stranger,
        Err(nb_tracing::TracingError::TopicNotFound(_))
    ));
}

#[test]
fn secured_traces_are_encrypted_and_only_keyed_trackers_read_them() {
    let dep = deployment(Topology::Chain(2));
    let _entity = dep
        .traced_entity(
            0,
            "secret-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true, // secured
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "cleared-tracker",
            "secret-entity",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
        )
        .unwrap();

    // Key delivery must happen, then encrypted traces decode.
    assert!(wait_until(WAIT, || tracker.has_trace_key()));
    assert!(wait_until(WAIT, || {
        tracker.view().status("secret-entity") == Some(EntityStatus::Available)
    }));
    assert!(dep.engine(0).stats().keys_delivered >= 1);
}

#[test]
fn symmetric_signing_mode_works_end_to_end() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "fast-entity",
            DiscoveryRestrictions::Open,
            SigningMode::SymmetricKey,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "fast-tracker",
            "fast-entity",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
        )
        .unwrap();

    assert!(wait_until(WAIT, || entity.pings_answered() >= 3));
    assert!(wait_until(WAIT, || {
        tracker.view().status("fast-entity") == Some(EntityStatus::Available)
    }));
    // No authentication failures along the way.
    assert_eq!(dep.engine(0).stats().auth_failures, 0);
}

#[test]
fn interest_gating_suppresses_unwanted_categories() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "gated",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    // Tracker interested ONLY in change notifications.
    let tracker = dep
        .tracker(
            1,
            "cn-only",
            "gated",
            vec![TraceCategory::ChangeNotifications],
        )
        .unwrap();
    assert!(wait_until(WAIT, || entity.pings_answered() >= 3));

    // ALLS_WELL traffic must be gated (nobody wants AllUpdates).
    let stats = dep.engine(0).stats();
    assert!(stats.traces_gated >= 1, "gated={}", stats.traces_gated);
    // The tracker still learned about availability via JOIN.
    assert!(wait_until(WAIT, || {
        tracker.view().status("gated") == Some(EntityStatus::Available)
    }));
    // Load reports from the entity are also gated. Condition-based:
    // wait for the engine to actually gate the report (its gated
    // counter ticks) instead of sleeping a fixed 300 ms and hoping the
    // report has flowed through by then.
    let gated_before = dep.engine(0).stats().traces_gated;
    entity
        .report_load(LoadInformation {
            cpu_percent: 1.0,
            memory_used_bytes: 1,
            memory_total_bytes: 2,
            workload: 0,
        })
        .unwrap();
    assert!(wait_until(WAIT, || {
        dep.engine(0).stats().traces_gated > gated_before
    }));
    assert!(tracker.view().get("gated").and_then(|r| r.load).is_none());
}

#[test]
fn multiple_trackers_with_different_interests() {
    let dep = deployment(Topology::Star(2));
    let entity = dep
        .traced_entity(
            0,
            "popular",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let t_all = dep
        .tracker(
            1,
            "wants-all",
            "popular",
            vec![
                TraceCategory::AllUpdates,
                TraceCategory::ChangeNotifications,
                TraceCategory::Load,
            ],
        )
        .unwrap();
    let t_cn = dep
        .tracker(
            2,
            "wants-changes",
            "popular",
            vec![TraceCategory::ChangeNotifications],
        )
        .unwrap();

    assert!(wait_until(WAIT, || dep.engine(0).interest_count("popular") == 2));
    assert!(wait_until(WAIT, || entity.pings_answered() >= 3));
    assert!(wait_until(WAIT, || {
        t_all.view().get("popular").map(|r| r.traces_seen).unwrap_or(0) >= 3
    }));
    // Both see availability.
    assert!(wait_until(WAIT, || {
        t_cn.view().status("popular") == Some(EntityStatus::Available)
    }));
    // But the changes-only tracker sees far fewer traces (heartbeats
    // flow only to the all-updates tracker).
    assert!(wait_until(WAIT, || {
        t_all.traces_applied() >= t_cn.traces_applied() + 2
    }));
}

#[test]
fn token_refresh_keeps_traces_flowing() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "refresher",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "refresh-watcher",
            "refresher",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
        )
        .unwrap();
    assert!(wait_until(WAIT, || tracker.traces_applied() >= 2));

    // Rotate the delegate key pair mid-flight.
    entity.refresh_token().unwrap();
    let before = tracker.traces_applied();
    assert!(wait_until(WAIT, || tracker.traces_applied() > before + 2));
    assert_eq!(tracker.rejected_tokens(), 0);
}

#[test]
fn tracing_works_across_four_hops() {
    let dep = deployment(Topology::Chain(5));
    let _entity = dep
        .traced_entity(
            0,
            "far-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            4,
            "far-tracker",
            "far-entity",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
        )
        .unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().status("far-entity") == Some(EntityStatus::Available)
    }));
    assert!(wait_until(WAIT, || tracker.traces_applied() >= 3));
}

#[test]
fn failed_entity_recovers_by_reregistering() {
    let dep = deployment(Topology::Chain(2));
    let entity = dep
        .traced_entity(
            0,
            "phoenix",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "phoenix-watcher",
            "phoenix",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().status("phoenix") == Some(EntityStatus::Available)
    }));

    // Crash and wait for the FAILED verdict.
    entity.stop();
    assert!(wait_until(WAIT, || {
        tracker.view().status("phoenix") == Some(EntityStatus::Failed)
    }));

    // Recovery: the entity comes back and re-registers (the engine
    // tears down the dead session and grants a fresh one).
    let revived = dep
        .traced_entity(
            0,
            "phoenix",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .unwrap();
    assert!(wait_until(WAIT, || revived.pings_answered() >= 2));
    assert_eq!(
        dep.engine(0).liveness_of("phoenix"),
        Some(Liveness::Alive)
    );
    // The revived entity got a fresh session and trace topic; the old
    // tracker is bound to the dead topic (its view stays Failed), so
    // resuming tracking means re-running discovery — which prefers the
    // newest advertisement.
    assert_ne!(revived.session_id(), entity.session_id());
    assert_ne!(revived.trace_topic(), entity.trace_topic());
    let tracker2 = dep
        .tracker(
            1,
            "phoenix-watcher-2",
            "phoenix",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();
    assert_eq!(tracker2.trace_topic(), revived.trace_topic());
    assert!(wait_until(WAIT, || {
        tracker2.view().status("phoenix") == Some(EntityStatus::Available)
    }));
}

#[test]
fn secured_tracing_with_negotiated_ctr_mode() {
    // §5.1 negotiates "the encryption algorithm and padding scheme";
    // run the secured flow with AES-CTR instead of the default CBC.
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    config.trace_cipher = nb_crypto::modes::CipherMode::Ctr;
    let dep = Deployment::new(
        Topology::Chain(2),
        LinkConfig::instant(),
        system_clock(),
        config,
    )
    .unwrap();
    let _entity = dep
        .traced_entity(
            0,
            "ctr-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true,
        )
        .unwrap();
    let tracker = dep
        .tracker(
            1,
            "ctr-tracker",
            "ctr-entity",
            vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
        )
        .unwrap();
    assert!(wait_until(WAIT, || tracker.has_trace_key()));
    assert!(wait_until(WAIT, || {
        tracker.view().status("ctr-entity") == Some(EntityStatus::Available)
    }));
    assert!(wait_until(WAIT, || tracker.traces_applied() >= 3));
}
