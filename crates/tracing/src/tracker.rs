//! The tracker runtime (paper §3.4–§3.5, §4.1, §5.1).
//!
//! A tracker discovers the trace topic through the TDN (presenting its
//! credentials), subscribes to exactly the trace categories it cares
//! about, answers GAUGE_INTEREST probes, receives the sealed trace key
//! when tracing is secured, and folds verified traces into an
//! [`AvailabilityView`].

use crate::channels;
use crate::config::TracingConfig;
use crate::error::TracingError;
use crate::persist::TrackerDurableState;
use crate::view::AvailabilityView;
use crate::Result;
use nb_broker::BrokerClient;
use nb_crypto::cert::Credential;
use nb_crypto::modes::{cbc_decrypt, ctr_transform, CipherMode};
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::{SessionKey, SessionKeyring, SessionVerdict, Uuid};
use nb_metrics::{Counter, Registry, Snapshot};
use nb_store::{Durable, Recovery, StoreConfig};
use nb_tdn::TdnCluster;
use nb_telemetry::{now_ns, FlightRecorder, SpanEvent, Stage, TraceContext};
use nb_transport::clock::SharedClock;
use nb_wire::codec::Decode;
use nb_wire::payload::{TopicAdvertisement, TraceKeyMaterial};
use nb_wire::token::Rights;
use nb_wire::trace::{topics, TraceCategory, TraceEvent};
use nb_wire::{Message, Payload};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Options for a tracker.
pub struct TrackerOptions {
    /// The tracker's identifier.
    pub tracker_id: String,
    /// The tracker's CA-issued credential.
    pub credential: Credential,
    /// Trace categories of interest ("any combination of change
    /// notifications, all-updates, state transitions, load information
    /// or network metrics", §3.5).
    pub interests: Vec<TraceCategory>,
    /// Scheme configuration (token skew).
    pub config: TracingConfig,
    /// Durability root. `Some(dir)` journals applied traces to
    /// `dir/tracker.{wal,snap}` and recovers the availability view on
    /// restart; `None` keeps the view purely in memory.
    pub data_dir: Option<PathBuf>,
    /// Store tuning (checkpoint cadence, fsync policy) when
    /// `data_dir` is set.
    pub store: StoreConfig,
}

/// Cached handles on a tracker's per-instance registry (`tracker.*`
/// metric family; see `docs/OBSERVABILITY.md`).
struct TrackerMetrics {
    registry: Registry,
    traces_applied: Counter,
    rejected_tokens: Counter,
    undecryptable: Counter,
    interest_responses: Counter,
    session_verified: Counter,
    session_rejected: Counter,
}

impl TrackerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        TrackerMetrics {
            traces_applied: registry.counter("tracker.traces.applied"),
            rejected_tokens: registry.counter("tracker.tokens.rejected"),
            undecryptable: registry.counter("tracker.traces.undecryptable"),
            interest_responses: registry.counter("tracker.interest.responses"),
            session_verified: registry.counter("tracker.session.verified"),
            session_rejected: registry.counter("tracker.session.rejected"),
            registry,
        }
    }
}

struct TrackerInner {
    id: String,
    credential: Credential,
    client: BrokerClient,
    clock: SharedClock,
    config: TracingConfig,
    entity_id: String,
    trace_topic: Uuid,
    owner_key: RsaPublicKey,
    interests: Vec<TraceCategory>,
    trace_key: Mutex<Option<(Vec<u8>, CipherMode)>>,
    /// Session keys delivered by the engine (amortized RSA): tagged
    /// traces verify with one HMAC here instead of an RSA token check.
    sessions: SessionKeyring,
    view: AvailabilityView,
    /// Journal for applied traces, when durability is enabled.
    persist: Mutex<Option<Durable<TrackerDurableState>>>,
    /// What recovery found on start-up (durable trackers only).
    recovery: Option<Recovery>,
    metrics: TrackerMetrics,
    /// Per-tracker causal-tracing span ring (apply/reject spans).
    recorder: FlightRecorder,
    stop: AtomicBool,
}

/// A running tracker for one traced entity.
pub struct Tracker {
    inner: Arc<TrackerInner>,
}

impl Tracker {
    /// Discovers `entity_id`'s trace topic (authorized discovery,
    /// §3.4), subscribes to the chosen categories, and starts the
    /// consuming pump.
    pub fn start(
        client: BrokerClient,
        tdns: &TdnCluster,
        clock: SharedClock,
        entity_id: &str,
        opts: TrackerOptions,
    ) -> Result<Self> {
        let timeout = Duration::from_secs(10);

        // §3.4: the discovery query carries our credentials; no
        // response means "not authorized or no such topic".
        let advert = discover_advertisement(tdns, entity_id, &opts.credential)?;
        let trace_topic = advert.topic_id;
        let owner_key = advert.owner_cert.public_key.clone();

        // Subscribe to each interesting category channel plus the
        // interest probe channel and our key-delivery channel.
        for category in &opts.interests {
            client.subscribe(topics::publication(&trace_topic, *category), timeout)?;
        }
        client.subscribe(topics::gauge_interest(&trace_topic), timeout)?;
        client.subscribe(channels::key_delivery(&opts.tracker_id), timeout)?;

        // Durability: recover the availability view journalled by a
        // previous incarnation before any trace flows, so the restart
        // resumes from the last applied sequence instead of a blank
        // map (stale re-deliveries stay rejected, nothing re-counts).
        let (view, persist, recovery) = match &opts.data_dir {
            Some(dir) => match Durable::<TrackerDurableState>::open(
                dir,
                "tracker",
                opts.store.clone(),
            ) {
                Ok((durable, state, rec)) => {
                    (state.view, Some(durable), Some(rec))
                }
                // Storage trouble degrades to in-memory operation —
                // tracking beats crashing on a bad disk.
                Err(_) => (AvailabilityView::new(), None, None),
            },
            None => (AvailabilityView::new(), None, None),
        };

        let recorder =
            FlightRecorder::new(opts.tracker_id.clone(), opts.config.telemetry.capacity);
        let inner = Arc::new(TrackerInner {
            id: opts.tracker_id,
            credential: opts.credential,
            client,
            clock,
            config: opts.config,
            entity_id: entity_id.to_string(),
            trace_topic,
            owner_key,
            interests: opts.interests,
            trace_key: Mutex::new(None),
            sessions: SessionKeyring::new(),
            view,
            persist: Mutex::new(persist),
            recovery,
            metrics: TrackerMetrics::new(),
            recorder,
            stop: AtomicBool::new(false),
        });
        let tracker = Tracker { inner };

        // Proactive interest registration: §3.5 has trackers respond
        // to probes; announcing once at start-up as well removes one
        // round trip before the first gated trace flows.
        tracker.send_interest_response()?;
        tracker.spawn_pump();
        Ok(tracker)
    }

    /// The availability view (clone shares state; read it any time).
    pub fn view(&self) -> AvailabilityView {
        self.inner.view.clone()
    }

    /// The discovered trace topic.
    pub fn trace_topic(&self) -> Uuid {
        self.inner.trace_topic
    }

    /// The tracker identifier.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Traces applied so far.
    pub fn traces_applied(&self) -> u64 {
        self.inner.metrics.traces_applied.get()
    }

    /// Token-rejected message count.
    pub fn rejected_tokens(&self) -> u64 {
        self.inner.metrics.rejected_tokens.get()
    }

    /// Interest responses sent.
    pub fn interest_responses(&self) -> u64 {
        self.inner.metrics.interest_responses.get()
    }

    /// Captures every `tracker.*` metric of this tracker.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.inner.metrics.registry.snapshot()
    }

    /// This tracker's causal-tracing flight recorder (terminal
    /// apply/reject spans for sampled traces).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Whether the sealed trace key has arrived (secured tracing).
    pub fn has_trace_key(&self) -> bool {
        self.inner.trace_key.lock().is_some()
    }

    /// Whether at least one trace session key has been delivered
    /// (amortized-RSA tagging).
    pub fn has_session_key(&self) -> bool {
        !self.inner.sessions.is_empty()
    }

    /// Traces authenticated by a session MAC (no RSA on the hot path).
    pub fn session_verified(&self) -> u64 {
        self.inner.metrics.session_verified.get()
    }

    /// What recovery found on start-up, when this tracker is durable.
    pub fn recovery(&self) -> Option<Recovery> {
        self.inner.recovery.clone()
    }

    /// Forces a snapshot checkpoint now (durable trackers only).
    /// Returns whether a snapshot was written.
    pub fn checkpoint_now(&self) -> bool {
        let mut guard = self.inner.persist.lock();
        let Some(durable) = guard.as_mut() else {
            return false;
        };
        durable
            .checkpoint(&TrackerDurableState {
                view: self.inner.view.clone(),
            })
            .is_ok()
    }

    /// Stops the pump.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// Convenience: blocks until the tracked entity reaches `want`, or
    /// the timeout elapses.
    ///
    /// Event-driven: rides [`AvailabilityView::wait_for_status`]'s
    /// condition variable, waking exactly when the pump applies a
    /// trace — the 5 ms sleep-poll this used to be would add up to one
    /// poll interval of latency to every status assertion.
    ///
    /// [`AvailabilityView::wait_for_status`]: crate::view::AvailabilityView::wait_for_status
    pub fn wait_for_status(
        &self,
        want: crate::view::EntityStatus,
        timeout: Duration,
    ) -> bool {
        self.inner
            .view
            .wait_for_status(&self.inner.entity_id, want, timeout)
    }

    fn send_interest_response(&self) -> Result<()> {
        send_interest_response(&self.inner)
    }

    fn spawn_pump(&self) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("tracker-{}-pump", inner.id))
            .spawn(move || loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                let msg = match inner.client.next_message(Duration::from_millis(50)) {
                    Ok(m) => m,
                    Err(nb_broker::BrokerError::Timeout) => continue,
                    Err(nb_broker::BrokerError::Transport(
                        nb_transport::TransportError::Timeout,
                    )) => continue,
                    Err(_) => return,
                };
                handle_message(&inner, msg);
            })
            .expect("spawn tracker pump");
    }
}

fn discover_advertisement(
    tdns: &TdnCluster,
    entity_id: &str,
    credential: &Credential,
) -> Result<TopicAdvertisement> {
    let adverts = tdns.discover(
        &topics::discovery_query(entity_id),
        &credential.certificate,
    );
    // Verify TDN provenance; prefer the newest advertisement (a
    // compromised topic may have been replaced, §5.2).
    let mut best: Option<TopicAdvertisement> = None;
    for advert in adverts {
        let Some(key) = tdns.tdn_key(&advert.tdn_id) else {
            continue;
        };
        if advert.verify(&key).is_err() {
            continue;
        }
        match &best {
            Some(b) if b.created_ms >= advert.created_ms => {}
            _ => best = Some(advert),
        }
    }
    best.ok_or_else(|| TracingError::TopicNotFound(entity_id.to_string()))
}

/// §4.1/§5.2: only accept broker publications carrying a token signed
/// by the topic owner.
fn token_valid(inner: &TrackerInner, msg: &Message) -> bool {
    let Some(token) = &msg.token else {
        return false;
    };
    token
        .verify(
            &inner.owner_key,
            Rights::Publish,
            inner.clock.now_ms(),
            inner.config.token_skew_ms,
        )
        .is_ok()
}

/// Whether a trace publication is admissible: a valid session MAC
/// under a delivered key (one HMAC, the amortized-RSA hot path), or —
/// for untagged frames and unknown/expired key ids — the full §4.1
/// RSA token check. Revoked keys, wrong-topic keys and bad MACs are
/// security events: the frame is rejected outright, token or not.
fn frame_authorized(inner: &TrackerInner, msg: &Message) -> bool {
    if let Some(tag) = &msg.session {
        if !inner.sessions.is_empty() {
            let signable = msg.signable_bytes();
            match inner.sessions.verify(
                tag.key_id,
                tag.seq,
                Some(&inner.trace_topic),
                inner.clock.now_ms(),
                &[&signable],
                &tag.mac,
            ) {
                SessionVerdict::Verified => {
                    inner.metrics.session_verified.inc();
                    return true;
                }
                // The issuer rotated ahead of us (or the key lapsed):
                // fall back to the RSA token path below.
                SessionVerdict::UnknownKey | SessionVerdict::Expired => {}
                SessionVerdict::Revoked
                | SessionVerdict::WrongTopic
                | SessionVerdict::BadMac => {
                    inner.metrics.session_rejected.inc();
                    return false;
                }
            }
        }
    }
    if token_valid(inner, msg) {
        true
    } else {
        inner.metrics.rejected_tokens.inc();
        false
    }
}

/// Records a terminal tracker span when the message rode a sampled
/// trace.
fn record_span(inner: &TrackerInner, ctx: Option<&TraceContext>, stage: Stage, t0: u64) {
    if let Some(ctx) = ctx {
        inner.recorder.record(SpanEvent::new(ctx, stage, t0, now_ns()));
    }
}

fn handle_message(inner: &Arc<TrackerInner>, msg: Message) {
    let traced = if inner.config.telemetry.enabled {
        msg.trace.filter(|c| c.sampled)
    } else {
        None
    };
    let t0 = if traced.is_some() { now_ns() } else { 0 };
    match &msg.payload {
        Payload::GaugeInterestRequest { .. } => {
            // §5.1: "Interested trackers, after confirming the validity
            // of the security token, then respond…"
            if !token_valid(inner, &msg) {
                inner.metrics.rejected_tokens.inc();
                return;
            }
            let _ = send_interest_response(inner);
        }
        Payload::TraceKeyDelivery { sealed } => {
            if !token_valid(inner, &msg) {
                inner.metrics.rejected_tokens.inc();
                return;
            }
            if let Ok(bytes) = sealed.open(&inner.credential.private_key) {
                if let Ok(material) = TraceKeyMaterial::from_bytes(&bytes) {
                    if let Ok(mode) = material.mode() {
                        *inner.trace_key.lock() = Some((material.key, mode));
                    }
                }
            }
        }
        Payload::SessionKeyDelivery { sealed } => {
            if !token_valid(inner, &msg) {
                inner.metrics.rejected_tokens.inc();
                return;
            }
            if let Ok(bytes) = sealed.open(&inner.credential.private_key) {
                if let Ok(key) = SessionKey::from_bytes(&bytes) {
                    // Only keys bound to the tracked topic are
                    // admissible — anything else cannot authenticate
                    // our entity's traces anyway.
                    if key.topic == inner.trace_topic {
                        inner.sessions.install(key);
                    }
                }
            }
        }
        Payload::SessionKeyRevoke { key_id, topic } => {
            if !token_valid(inner, &msg) {
                inner.metrics.rejected_tokens.inc();
                return;
            }
            if *topic == inner.trace_topic {
                inner.sessions.revoke(*key_id);
            }
        }
        Payload::Trace { event } => {
            if !frame_authorized(inner, &msg) {
                record_span(inner, traced.as_ref(), Stage::TrackerReject, t0);
                return;
            }
            apply_event(inner, event.clone());
            record_span(inner, traced.as_ref(), Stage::TrackerApply, t0);
        }
        Payload::EncryptedTrace { iv, ciphertext } => {
            if !frame_authorized(inner, &msg) {
                record_span(inner, traced.as_ref(), Stage::TrackerReject, t0);
                return;
            }
            let key = inner.trace_key.lock().clone();
            let Some((key, mode)) = key else {
                inner.metrics.undecryptable.inc();
                record_span(inner, traced.as_ref(), Stage::TrackerReject, t0);
                return;
            };
            let decrypted = match mode {
                CipherMode::Cbc => cbc_decrypt(&key, iv, ciphertext),
                CipherMode::Ctr => ctr_transform(&key, iv, ciphertext),
            };
            match decrypted
                .ok()
                .and_then(|pt| TraceEvent::from_bytes(&pt).ok())
            {
                Some(event) => {
                    apply_event(inner, event);
                    record_span(inner, traced.as_ref(), Stage::TrackerApply, t0);
                }
                None => {
                    inner.metrics.undecryptable.inc();
                    record_span(inner, traced.as_ref(), Stage::TrackerReject, t0);
                }
            }
        }
        _ => {}
    }
}

fn apply_event(inner: &TrackerInner, event: TraceEvent) {
    // Cross-check the event is about the entity we track.
    if event.trace_topic != inner.trace_topic || event.entity_id != inner.entity_id {
        return;
    }
    // Journal only what the view accepted: stale re-deliveries never
    // reach the log, so replay after a crash applies each event
    // exactly once.
    if !inner.view.apply(&event) {
        return;
    }
    inner.metrics.traces_applied.inc();
    let mut guard = inner.persist.lock();
    if let Some(durable) = guard.as_mut() {
        if durable.record(&event).is_ok() && durable.should_checkpoint() {
            let _ = durable.checkpoint(&TrackerDurableState {
                view: inner.view.clone(),
            });
        }
    }
}

fn send_interest_response(inner: &Arc<TrackerInner>) -> Result<()> {
    let mut msg = inner.client.make_message(
        topics::interest_response(&inner.trace_topic),
        Payload::InterestResponse {
            credentials: inner.credential.certificate.clone(),
            interests: inner.interests.clone(),
            reply_topic: channels::key_delivery(&inner.id),
        },
    );
    msg.sign(&inner.credential)?;
    inner.client.send_message(&msg)?;
    inner.metrics.interest_responses.inc();
    Ok(())
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracker({} → {})",
            self.inner.id, self.inner.entity_id
        )
    }
}
