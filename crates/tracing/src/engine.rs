//! The broker-side tracing engine (paper §3.3–§3.5, §4, §5).
//!
//! One engine runs at each broker that hosts traced entities. It is
//! "responsible for polling — the pull part — the traced entity at
//! regular intervals and for generating — the push part — traces for
//! the traced entity".

use crate::channels;
use crate::config::TracingConfig;
use crate::failure::{DetectorEvent, FailureDetector, Liveness};
use crate::interest::{InterestSet, TrackerInterest};
use nb_broker::Broker;
use nb_crypto::cert::{Certificate, Credential};
use nb_crypto::hybrid::SealedEnvelope;
use nb_crypto::modes::{cbc_encrypt, ctr_transform, CipherMode};
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::{SessionKey, SessionKeyring, Uuid};
use nb_metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use nb_telemetry::{now_ns, FlightRecorder, HeadSampler, SpanEvent, Stage, TraceContext};
use nb_transport::clock::SharedClock;
use nb_wire::codec::{Decode, Encode};
use nb_wire::payload::{SessionGrant, TraceKeyMaterial};
use nb_wire::token::AuthorizationToken;
use nb_wire::trace::{topics, EntityState, TraceCategory, TraceEvent, TraceKind};
use nb_monitor::{MonitorSet, VerdictKind};
use nb_obs::{NodeKind, PublisherConfig, TelemetryPublisher};
use nb_wire::{Message, Payload, SessionTag};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Everything an engine needs at start-up.
pub struct EngineSetup {
    /// The broker this engine runs at.
    pub broker: Broker,
    /// The broker's credential (entities seal keys to its public key).
    pub credential: Credential,
    /// CA key for validating entity/tracker certificates.
    pub ca_key: RsaPublicKey,
    /// Public keys of the TDNs whose advertisements we accept.
    pub tdn_keys: HashMap<String, RsaPublicKey>,
    /// Time source.
    pub clock: SharedClock,
    /// Scheme configuration.
    pub config: TracingConfig,
    /// RNG seed (session ids, IVs, trace keys).
    pub seed: u64,
}

/// Cached handles on an engine's per-instance registry (`tracing.*`
/// metric family; see `docs/OBSERVABILITY.md`).
struct EngineMetrics {
    registry: Registry,
    traces_published: Counter,
    traces_gated: Counter,
    pings_sent: Counter,
    suspicions: Counter,
    failures: Counter,
    auth_failures: Counter,
    keys_delivered: Counter,
    session_established: Counter,
    session_rotations: Counter,
    session_keys_delivered: Counter,
    /// Milliseconds from the last evidence of liveness (last ping
    /// response, or the first ping for entities that never answered)
    /// to the FAILED verdict — the paper's detection latency.
    time_to_detect_ms: Histogram,
    sessions: Gauge,
}

impl EngineMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        EngineMetrics {
            traces_published: registry.counter("tracing.traces.published"),
            traces_gated: registry.counter("tracing.traces.gated"),
            pings_sent: registry.counter("tracing.pings.sent"),
            suspicions: registry.counter("tracing.detector.suspicions"),
            failures: registry.counter("tracing.detector.failures"),
            auth_failures: registry.counter("tracing.auth.failures"),
            keys_delivered: registry.counter("tracing.keys.delivered"),
            session_established: registry.counter("tracing.session.established"),
            session_rotations: registry.counter("tracing.session.rotations"),
            session_keys_delivered: registry.counter("tracing.session.delivered"),
            time_to_detect_ms: registry.histogram("tracing.detection.time_to_detect_ms"),
            sessions: registry.gauge("tracing.sessions"),
            registry,
        }
    }
}

/// Counters snapshot for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStatsSnapshot {
    /// Trace events published.
    pub traces_published: u64,
    /// Trace events suppressed by interest gating.
    pub traces_gated: u64,
    /// Pings sent.
    pub pings_sent: u64,
    /// FAILURE_SUSPICION events.
    pub suspicions: u64,
    /// FAILED events.
    pub failures: u64,
    /// Authentication failures.
    pub auth_failures: u64,
    /// Trace keys delivered.
    pub keys_delivered: u64,
    /// Trace session keys adopted (announcements + rotations).
    pub session_established: u64,
    /// Trace session-key rotations performed.
    pub session_rotations: u64,
}

/// Upper bound on messages parked while waiting for a reordered
/// SymmetricKeySetup to arrive.
const MAX_PENDING_MAC: usize = 32;

struct Session {
    entity_id: String,
    trace_topic: Uuid,
    session_id: Uuid,
    cert: Certificate,
    state: EntityState,
    detector: FailureDetector,
    token: Option<AuthorizationToken>,
    /// §6.3 shared HMAC key (replaces per-message RSA verification).
    mac_key: Option<Vec<u8>>,
    /// §5.1 secret trace key and negotiated cipher mode (traces
    /// encrypted when present).
    trace_key: Option<(Vec<u8>, CipherMode)>,
    /// Current trace session key (amortized RSA): the id of the key
    /// the engine tags outgoing trace publications with. The key
    /// material itself lives in the broker's shared keyring.
    session_key_id: Option<u64>,
    /// Trackers that already hold the current session key (cleared on
    /// every adoption/rotation so the new key fans out again).
    session_delivered: HashSet<String>,
    interest: InterestSet,
    trace_seq: u64,
    joined: bool,
    last_gauge_ms: u64,
    last_metrics_ms: u64,
    /// MAC'd messages that overtook the SymmetricKeySetup (replayed
    /// once the key arrives).
    pending_mac: Vec<Message>,
}

struct EngineInner {
    broker: Broker,
    credential: Credential,
    ca_key: RsaPublicKey,
    tdn_keys: HashMap<String, RsaPublicKey>,
    clock: SharedClock,
    config: TracingConfig,
    sessions: Mutex<HashMap<String, Session>>,
    /// trace topic → entity id (for interest responses).
    topic_index: Mutex<HashMap<Uuid, String>>,
    /// The hosting broker's session keyring (shared by reference: the
    /// broker's data plane verifies against the very keys the engine
    /// installs and tags with).
    session_keys: Arc<SessionKeyring>,
    metrics: EngineMetrics,
    /// Per-engine causal-tracing span ring.
    recorder: FlightRecorder,
    /// Head-sampling decision for engine-originated messages.
    sampler: HeadSampler,
    stop: AtomicBool,
    rng: Mutex<StdRng>,
    consumer: String,
    /// Attached runtime-verification monitor, if any: sees every ping
    /// issued, every response observed, and every availability
    /// verdict rendered (see [`TracingEngine::attach_monitor`]).
    monitor: RwLock<Option<MonitorSet>>,
}

/// Reports a rendered availability verdict to the attached monitor.
fn notify_verdict(inner: &EngineInner, entity: &str, verdict: VerdictKind, now: u64) {
    if let Some(monitor) = inner.monitor.read().as_ref() {
        monitor.on_verdict(inner.broker.id(), entity, verdict, now);
    }
}

/// Handle to a running tracing engine.
#[derive(Clone)]
pub struct TracingEngine {
    inner: Arc<EngineInner>,
}

impl TracingEngine {
    /// Starts the engine at `setup.broker`: subscribes to the
    /// registration channel and spawns the dispatcher (and, unless
    /// `auto_tick` is off, the ticker).
    pub fn start(setup: EngineSetup) -> Self {
        let consumer = format!("tracing-engine@{}", setup.broker.id());
        let rx = setup.broker.register_internal(&consumer);
        setup
            .broker
            .subscribe_internal(&consumer, topics::registration())
            .expect("engine may subscribe to the registration channel");

        let recorder = FlightRecorder::new(consumer.clone(), setup.config.telemetry.capacity);
        let sampler = HeadSampler::from_config(&setup.config.telemetry);
        let session_keys = setup.broker.session_keyring();
        let inner = Arc::new(EngineInner {
            broker: setup.broker,
            credential: setup.credential,
            ca_key: setup.ca_key,
            tdn_keys: setup.tdn_keys,
            clock: setup.clock,
            config: setup.config,
            sessions: Mutex::new(HashMap::new()),
            topic_index: Mutex::new(HashMap::new()),
            session_keys,
            metrics: EngineMetrics::new(),
            recorder,
            sampler,
            stop: AtomicBool::new(false),
            rng: Mutex::new(StdRng::seed_from_u64(setup.seed)),
            consumer,
            monitor: RwLock::new(None),
        });

        let dispatch_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name(format!("{}-dispatch", inner.consumer))
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    if dispatch_inner.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    handle_message(&dispatch_inner, msg);
                }
            })
            .expect("spawn engine dispatcher");

        if inner.config.auto_tick {
            let tick_inner = Arc::clone(&inner);
            let tick = inner.config.tick;
            std::thread::Builder::new()
                .name(format!("{}-ticker", inner.consumer))
                .spawn(move || loop {
                    if tick_inner.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    run_tick(&tick_inner);
                    std::thread::sleep(tick);
                })
                .expect("spawn engine ticker");
        }

        TracingEngine { inner }
    }

    /// Runs one scheduling pass now (deterministic testing with
    /// `auto_tick` disabled).
    pub fn tick_now(&self) {
        run_tick(&self.inner);
    }

    /// Attaches an online runtime-verification monitor: the engine
    /// reports every ping it issues, every ping response it observes,
    /// and every availability verdict it renders, so the monitor's
    /// `causal-verdicts` property can check that verdicts follow from
    /// actual ping traffic.
    pub fn attach_monitor(&self, monitor: MonitorSet) {
        *self.inner.monitor.write() = Some(monitor);
    }

    /// Stops background threads (best effort).
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// The public key entities seal their keys to.
    pub fn public_key(&self) -> RsaPublicKey {
        self.inner.credential.certificate.public_key.clone()
    }

    /// Number of live tracing sessions.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().len()
    }

    /// Liveness verdict for an entity, if hosted here.
    pub fn liveness_of(&self, entity_id: &str) -> Option<Liveness> {
        self.inner
            .sessions
            .lock()
            .get(entity_id)
            .map(|s| s.detector.liveness())
    }

    /// Whether the engine currently holds a delegation token for the
    /// entity.
    pub fn has_token(&self, entity_id: &str) -> bool {
        self.inner
            .sessions
            .lock()
            .get(entity_id)
            .is_some_and(|s| s.token.is_some())
    }

    /// Number of trackers registered as interested in `entity_id`.
    pub fn interest_count(&self, entity_id: &str) -> usize {
        self.inner
            .sessions
            .lock()
            .get(entity_id)
            .map(|s| s.interest.len())
            .unwrap_or(0)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> EngineStatsSnapshot {
        let m = &self.inner.metrics;
        EngineStatsSnapshot {
            traces_published: m.traces_published.get(),
            traces_gated: m.traces_gated.get(),
            pings_sent: m.pings_sent.get(),
            suspicions: m.suspicions.get(),
            failures: m.failures.get(),
            auth_failures: m.auth_failures.get(),
            keys_delivered: m.keys_delivered.get(),
            session_established: m.session_established.get(),
            session_rotations: m.session_rotations.get(),
        }
    }

    /// This engine's causal-tracing flight recorder (spans for trace
    /// publications, pings, verdicts and consumed session messages).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Builds this engine's telemetry publisher: snapshots
    /// [`TracingEngine::metrics_snapshot`] and publishes the changes
    /// on the constrained Obs topic through the engine's home broker
    /// (internal publish path, constraint-exempt). Frames are
    /// attributed to the engine's consumer id
    /// (`tracing-engine@<broker>`).
    pub fn telemetry_publisher(&self, config: PublisherConfig) -> TelemetryPublisher {
        let source = self.clone();
        let broker = self.inner.broker.clone();
        TelemetryPublisher::new(
            self.inner.consumer.clone(),
            NodeKind::Engine,
            Arc::new(move || source.metrics_snapshot()),
            Arc::new(move |msg| broker.publish_internal(msg)),
            self.inner.clock.clone(),
            config,
        )
    }

    /// Captures every `tracing.*` metric of this engine (the session
    /// gauge is sampled at call time).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.inner
            .metrics
            .sessions
            .set(self.session_count() as i64);
        self.inner.metrics.registry.snapshot()
    }
}

/// Mints a root trace context for an engine-originated message, with
/// the head-sampling decision applied. `None` when telemetry is off.
fn mint_trace(inner: &EngineInner) -> Option<TraceContext> {
    if !inner.config.telemetry.enabled {
        return None;
    }
    let mut ctx = TraceContext::root(nb_telemetry::fresh_span_id(), false);
    ctx.sampled = inner.sampler.decide(ctx.trace_id);
    Some(ctx)
}

/// Records the root span of an engine-originated message. Its span id
/// is the context's `parent_span`, so every downstream span (broker
/// hops, tracker apply) chains under it.
fn record_root(inner: &EngineInner, ctx: &TraceContext, stage: Stage, start_ns: u64) {
    inner.recorder.record(SpanEvent {
        trace_id: ctx.trace_id,
        span_id: ctx.parent_span,
        parent_span: 0,
        hop: 0,
        stage,
        start_ns,
        end_ns: now_ns(),
    });
}

fn handle_message(inner: &Arc<EngineInner>, msg: Message) {
    let traced = if inner.config.telemetry.enabled {
        msg.trace.filter(|c| c.sampled)
    } else {
        None
    };
    let t0 = if traced.is_some() { now_ns() } else { 0 };
    match &msg.payload {
        Payload::TraceRegistration { .. } => handle_registration(inner, &msg),
        Payload::InterestResponse { .. } => handle_interest_response(inner, &msg),
        Payload::PingResponse { .. }
        | Payload::StateReport { .. }
        | Payload::LoadReport { .. }
        | Payload::SilentModeRequest
        | Payload::DelegationToken { .. }
        | Payload::TraceKeyDelivery { .. }
        | Payload::SymmetricKeySetup { .. }
        | Payload::SessionKeyAnnounce { .. } => {
            let ctx = traced;
            handle_session_message(inner, msg);
            if let Some(ctx) = &ctx {
                inner
                    .recorder
                    .record(SpanEvent::new(ctx, Stage::Consume, t0, now_ns()));
            }
            return;
        }
        _ => {}
    }
    if let Some(ctx) = &traced {
        inner
            .recorder
            .record(SpanEvent::new(ctx, Stage::Consume, t0, now_ns()));
    }
}

/// §3.2: verify credentials, proof of possession and topic provenance,
/// then grant a session.
fn handle_registration(inner: &Arc<EngineInner>, msg: &Message) {
    let Payload::TraceRegistration {
        entity_id,
        credentials,
        advertisement,
    } = &msg.payload
    else {
        return;
    };
    let now = inner.clock.now_ms();
    let reply_topic = channels::registration_reply(entity_id);

    let reject = |reason: &str| {
        let reply = Message::new(
            inner.broker.next_message_id(),
            reply_topic.clone(),
            inner.broker.id().to_string(),
            now,
            Payload::RegistrationRejected {
                reason: reason.to_string(),
            },
        )
        .correlated(msg.id);
        inner.broker.publish_internal(reply);
    };

    // 1. Certificate must chain to the CA.
    if credentials.verify(&inner.ca_key, now).is_err() {
        inner.metrics.auth_failures.inc();
        reject("invalid credentials");
        return;
    }
    // 2. Proof of possession + tamper evidence: the message signature
    //    must verify under the presented certificate (§3.2).
    if msg.verify_signature(&credentials.public_key).is_err() {
        inner.metrics.auth_failures.inc();
        reject("signature verification failed");
        return;
    }
    // 3. Topic provenance: the advertisement must be TDN-signed and
    //    owned by this very certificate.
    let tdn_ok = inner
        .tdn_keys
        .get(&advertisement.tdn_id)
        .map(|key| advertisement.verify(key).is_ok())
        .unwrap_or(false);
    if !tdn_ok {
        reject("advertisement provenance failed");
        return;
    }
    if advertisement.owner_cert != *credentials {
        reject("advertisement owned by a different credential");
        return;
    }
    if advertisement.is_expired(now) {
        reject("trace topic expired");
        return;
    }

    // Idempotency: a duplicated or retried registration (lossy links,
    // duplicating links) must re-issue the SAME session rather than
    // shadow the existing one. A FAILED entity re-registering is the
    // recovery path instead: tear the dead session down and grant a
    // fresh one (the paper's implied rejoin after failure).
    let failed_session = inner
        .sessions
        .lock()
        .get(entity_id.as_str())
        .map(|s| s.detector.liveness() == Liveness::Failed)
        .unwrap_or(false);
    if failed_session {
        let removed = inner.sessions.lock().remove(entity_id.as_str());
        if let Some(old) = removed {
            inner.topic_index.lock().remove(&old.trace_topic);
            inner.broker.unsubscribe_internal(
                &inner.consumer,
                &topics::entity_to_broker(&old.trace_topic, &old.session_id),
            );
        }
    }
    if let Some(existing) = inner.sessions.lock().get(entity_id.as_str()) {
        if existing.trace_topic == advertisement.topic_id {
            let grant = SessionGrant {
                request_id: msg.id,
                session_id: existing.session_id,
            };
            let sealed = {
                let mut rng = inner.rng.lock();
                SealedEnvelope::seal(
                    &credentials.public_key,
                    &grant.to_bytes(),
                    nb_crypto::aes::KeySize::Aes192,
                    &mut *rng,
                )
            };
            if let Ok(sealed) = sealed {
                let reply = Message::new(
                    inner.broker.next_message_id(),
                    reply_topic,
                    inner.broker.id().to_string(),
                    now,
                    Payload::RegistrationAccepted { sealed },
                )
                .correlated(msg.id);
                inner.broker.publish_internal(reply);
            }
            return;
        }
    }

    // Grant the session.
    let session_id = Uuid::new_v4(&mut *inner.rng.lock());
    let trace_topic = advertisement.topic_id;

    // The broker subscribes to the entity→broker session channel.
    let channel = topics::entity_to_broker(&trace_topic, &session_id);
    if inner
        .broker
        .subscribe_internal(&inner.consumer, channel)
        .is_err()
    {
        reject("session channel subscription failed");
        return;
    }
    // Also to the interest-response channel for this trace topic.
    let _ = inner
        .broker
        .subscribe_internal(&inner.consumer, topics::interest_response(&trace_topic));
    // Let the routing layer fully verify our future tokens.
    inner
        .broker
        .register_topic_owner(trace_topic, credentials.public_key.clone());

    let grant = SessionGrant {
        request_id: msg.id,
        session_id,
    };
    let sealed = {
        let mut rng = inner.rng.lock();
        SealedEnvelope::seal(
            &credentials.public_key,
            &grant.to_bytes(),
            nb_crypto::aes::KeySize::Aes192,
            &mut *rng,
        )
    };
    let Ok(sealed) = sealed else {
        reject("response sealing failed");
        return;
    };

    let session = Session {
        entity_id: entity_id.clone(),
        trace_topic,
        session_id,
        cert: credentials.clone(),
        state: EntityState::Initializing,
        detector: FailureDetector::new(&inner.config),
        token: None,
        mac_key: None,
        trace_key: None,
        session_key_id: None,
        session_delivered: HashSet::new(),
        interest: InterestSet::new(),
        trace_seq: 1,
        joined: false,
        last_gauge_ms: 0,
        last_metrics_ms: 0,
        pending_mac: Vec::new(),
    };
    inner
        .sessions
        .lock()
        .insert(entity_id.clone(), session);
    inner
        .topic_index
        .lock()
        .insert(trace_topic, entity_id.clone());

    let reply = Message::new(
        inner.broker.next_message_id(),
        reply_topic,
        inner.broker.id().to_string(),
        now,
        Payload::RegistrationAccepted { sealed },
    )
    .correlated(msg.id);
    inner.broker.publish_internal(reply);
}

/// §4.2: every trace message from the entity must demonstrate
/// possession of credentials — RSA signature, or HMAC after the §6.3
/// key exchange.
///
/// Both authenticators bind the message to the same principal (the
/// signature to the registered certificate, the MAC to the key that
/// was sealed to us under that certificate), so accepting either is
/// sound. Accepting either also makes the scheme robust to messages
/// reordered around the `SymmetricKeySetup` transition — UDP-style
/// links can deliver the first MAC'd messages before the setup itself.
fn authenticate(session: &Session, msg: &Message) -> bool {
    if let Some(key) = &session.mac_key {
        if msg.mac.is_some() && msg.verify_mac(key).is_ok() {
            return true;
        }
    }
    msg.signature.is_some() && msg.verify_signature(&session.cert.public_key).is_ok()
}

fn handle_session_message(inner: &Arc<EngineInner>, msg: Message) {
    let now = inner.clock.now_ms();
    let mut sessions = inner.sessions.lock();
    let Some(session) = sessions.get_mut(&msg.sender) else {
        return;
    };

    // The §6.3 transition message and the session-key announcement
    // must themselves carry an RSA signature — they are the asymmetric
    // half of the handshakes every later HMAC amortizes.
    let is_key_setup = matches!(
        msg.payload,
        Payload::SymmetricKeySetup { .. } | Payload::SessionKeyAnnounce { .. }
    );
    if is_key_setup {
        if msg.verify_signature(&session.cert.public_key).is_err() {
            inner.metrics.auth_failures.inc();
            return;
        }
    } else if !authenticate(session, &msg) {
        // A MAC'd message that overtook the key setup on a reordering
        // link: park it until the setup arrives (bounded). That is
        // deferral, not refusal, so it never counts as a failure.
        if msg.mac.is_some()
            && session.mac_key.is_none()
            && session.pending_mac.len() < MAX_PENDING_MAC
        {
            session.pending_mac.push(msg);
        } else {
            inner.metrics.auth_failures.inc();
        }
        return;
    }

    match msg.payload {
        Payload::PingResponse {
            seq,
            echo_sent_at_ms: _,
            state,
        } => {
            session.state = state;
            let recovered = session.detector.on_response(seq, now);
            if let Some(monitor) = inner.monitor.read().as_ref() {
                monitor.on_ping_answered(inner.broker.id(), &session.entity_id, seq, now);
            }
            if recovered == Some(DetectorEvent::Recover) {
                publish_trace(inner, session, TraceKind::AllsWell, now);
            }
            // ALLS_WELL heartbeat on every answered ping (gated on
            // interest like all AllUpdates traffic).
            publish_trace(inner, session, TraceKind::AllsWell, now);
            notify_verdict(inner, &session.entity_id, VerdictKind::AllsWell, now);
        }
        Payload::StateReport { from, to } => {
            session.state = to;
            publish_trace(inner, session, TraceKind::StateTransition { from, to }, now);
        }
        Payload::LoadReport { load } => {
            publish_trace(inner, session, TraceKind::LoadInformation(load), now);
        }
        Payload::SilentModeRequest => {
            publish_trace(inner, session, TraceKind::RevertingToSilentMode, now);
            let entity_id = session.entity_id.clone();
            let trace_topic = session.trace_topic;
            let session_id = session.session_id;
            sessions.remove(&entity_id);
            drop(sessions);
            inner.topic_index.lock().remove(&trace_topic);
            inner.broker.unsubscribe_internal(
                &inner.consumer,
                &topics::entity_to_broker(&trace_topic, &session_id),
            );
        }
        Payload::DelegationToken { token } => {
            // Verify the delegation actually comes from the topic owner.
            if token
                .verify(
                    &session.cert.public_key,
                    nb_wire::token::Rights::Publish,
                    now,
                    inner.config.token_skew_ms,
                )
                .is_err()
            {
                inner.metrics.auth_failures.inc();
                return;
            }
            session.token = Some(token);
            if !session.joined {
                session.joined = true;
                publish_trace(inner, session, TraceKind::Join, now);
                gauge_interest(inner, session, now);
            }
        }
        Payload::TraceKeyDelivery { sealed } => {
            // §5.1: the entity's secret trace key arrives sealed to us,
            // together with the negotiated algorithm and padding.
            if let Ok(bytes) = sealed.open(&inner.credential.private_key) {
                if let Ok(material) = TraceKeyMaterial::from_bytes(&bytes) {
                    if let Ok(mode) = material.mode() {
                        session.trace_key = Some((material.key, mode));
                    }
                }
            }
        }
        Payload::SessionKeyAnnounce { sealed } => {
            // The entity's freshly minted trace session key. Adopt it:
            // install into the broker keyring (the data plane starts
            // accepting its MACs), tag from now on, fan it out to the
            // interested tracker-set. Re-announcements (loss recovery)
            // adopt the newest key; superseded ones simply age out.
            if let Ok(bytes) = sealed.open(&inner.credential.private_key) {
                if let Ok(key) = SessionKey::from_bytes(&bytes) {
                    if key.topic != session.trace_topic {
                        inner.metrics.auth_failures.inc();
                        return;
                    }
                    if session.session_key_id != Some(key.key_id) {
                        adopt_session_key(inner, session, key, now);
                    }
                }
            }
        }
        Payload::SymmetricKeySetup { sealed } => {
            if let Ok(key) = sealed.open(&inner.credential.private_key) {
                session.mac_key = Some(key);
                // Replay anything that overtook the setup.
                let parked = std::mem::take(&mut session.pending_mac);
                if !parked.is_empty() {
                    drop(sessions);
                    for parked_msg in parked {
                        handle_session_message(inner, parked_msg);
                    }
                }
            }
        }
        _ => {}
    }
}

/// §3.5: a tracker answered a GAUGE_INTEREST probe.
fn handle_interest_response(inner: &Arc<EngineInner>, msg: &Message) {
    let Payload::InterestResponse {
        credentials,
        interests,
        reply_topic,
    } = &msg.payload
    else {
        return;
    };
    let now = inner.clock.now_ms();
    // Trackers must prove credential possession too.
    if credentials.verify(&inner.ca_key, now).is_err()
        || msg.verify_signature(&credentials.public_key).is_err()
    {
        inner.metrics.auth_failures.inc();
        return;
    }
    // Locate the session by the trace topic embedded in the channel.
    let Some(trace_topic) = trace_topic_from_message(msg) else {
        return;
    };
    let entity_id = {
        let index = inner.topic_index.lock();
        index.get(&trace_topic).cloned()
    };
    let Some(entity_id) = entity_id else { return };

    let mut sessions = inner.sessions.lock();
    let Some(session) = sessions.get_mut(&entity_id) else {
        return;
    };
    let first_contact = !session.interest.knows(&msg.sender);
    session.interest.register(
        &msg.sender,
        TrackerInterest {
            certificate: credentials.clone(),
            categories: interests.clone(),
            reply_topic: reply_topic.clone(),
            key_delivered: false,
            refreshed_ms: now,
        },
    );
    // A tracker that registers interest after the original JOIN was
    // published would otherwise never learn the entity is available;
    // re-announce on first contact.
    if first_contact && session.joined && session.detector.liveness() != Liveness::Failed {
        publish_trace(inner, session, TraceKind::Join, now);
    }

    // Secured tracing: deliver the trace key to newly interested,
    // authorized trackers (§5.1).
    if session.trace_key.is_some() {
        deliver_pending_keys(inner, session, now);
    }
    // Session layer: fan the current session key out to trackers that
    // do not hold it yet.
    deliver_session_keys(inner, session, now);
}

fn trace_topic_from_message(msg: &Message) -> Option<Uuid> {
    let constrained = nb_wire::constrained::ConstrainedTopic::parse(&msg.topic).ok()??;
    constrained.suffixes.first()?.parse().ok()
}

fn deliver_pending_keys(inner: &EngineInner, session: &mut Session, now: u64) {
    let Some((trace_key, mode)) = session.trace_key.clone() else {
        return;
    };
    let Some(token) = session.token.clone() else {
        return;
    };
    for (tracker_id, interest) in session.interest.pending_key_delivery() {
        let material = TraceKeyMaterial::aes192(trace_key.clone(), mode);
        let sealed = {
            let mut rng = inner.rng.lock();
            SealedEnvelope::seal(
                &interest.certificate.public_key,
                &material.to_bytes(),
                nb_crypto::aes::KeySize::Aes192,
                &mut *rng,
            )
        };
        let Ok(sealed) = sealed else { continue };
        let msg = Message::new(
            inner.broker.next_message_id(),
            interest.reply_topic.clone(),
            inner.broker.id().to_string(),
            now,
            Payload::TraceKeyDelivery { sealed },
        )
        .with_token(token.clone());
        inner.broker.publish_internal(msg);
        session.interest.mark_key_delivered(&tracker_id);
        inner.metrics.keys_delivered.inc();
    }
}

/// Adopts `key` as the session's current trace session key: installs
/// it into the broker's shared keyring and fans it out to the
/// interested tracker-set.
fn adopt_session_key(inner: &EngineInner, session: &mut Session, key: SessionKey, now: u64) {
    session.session_key_id = Some(key.key_id);
    session.session_delivered.clear();
    inner.broker.install_session_key(key);
    inner.metrics.session_established.inc();
    deliver_session_keys(inner, session, now);
}

/// Delivers the current session key, sealed, to every interested
/// tracker that does not hold it yet (mirrors
/// [`deliver_pending_keys`]). No-ops until both the key and the
/// delegation token exist; retried from every interest response, so a
/// lost delivery heals on the next gauge round.
fn deliver_session_keys(inner: &EngineInner, session: &mut Session, now: u64) {
    let Some(key_id) = session.session_key_id else {
        return;
    };
    let Some(key) = inner.session_keys.get(key_id) else {
        return;
    };
    let Some(token) = session.token.clone() else {
        return;
    };
    for (tracker_id, interest) in session.interest.trackers() {
        if session.session_delivered.contains(&tracker_id) {
            continue;
        }
        let sealed = {
            let mut rng = inner.rng.lock();
            SealedEnvelope::seal(
                &interest.certificate.public_key,
                &key.to_bytes(),
                nb_crypto::aes::KeySize::Aes192,
                &mut *rng,
            )
        };
        let Ok(sealed) = sealed else { continue };
        let msg = Message::new(
            inner.broker.next_message_id(),
            interest.reply_topic.clone(),
            inner.broker.id().to_string(),
            now,
            Payload::SessionKeyDelivery { sealed },
        )
        .with_token(token.clone());
        inner.broker.publish_internal(msg);
        session.session_delivered.insert(tracker_id);
        inner.metrics.session_keys_delivered.inc();
    }
}

/// Rotates the session's trace session key: mints and adopts a fresh
/// one, then revokes the spent key — at the hosting broker (which
/// syncs any attached monitor), at every interested tracker, and with
/// a signed notice on the audit topic so operators see the rotation.
///
/// Ordering matters for seamlessness: the new key is installed and
/// fanned out *before* the old one is revoked, so the tagged stream
/// never passes through a keyless window.
fn rotate_session_key(inner: &EngineInner, session: &mut Session, old_key_id: u64, now: u64) {
    let fresh = {
        let mut rng = inner.rng.lock();
        SessionKey::mint(
            session.trace_topic,
            now,
            inner.config.session_lifetime_ms,
            inner.config.session_max_messages,
            &mut *rng,
        )
    };
    adopt_session_key(inner, session, fresh, now);
    inner.broker.revoke_session_key(old_key_id);
    inner.metrics.session_rotations.inc();

    let revoke = Payload::SessionKeyRevoke {
        key_id: old_key_id,
        topic: session.trace_topic,
    };
    if let Some(token) = session.token.clone() {
        for (_, interest) in session.interest.trackers() {
            let msg = Message::new(
                inner.broker.next_message_id(),
                interest.reply_topic.clone(),
                inner.broker.id().to_string(),
                now,
                revoke.clone(),
            )
            .with_token(token.clone());
            inner.broker.publish_internal(msg);
        }
    }
    let mut audit = Message::new(
        inner.broker.next_message_id(),
        nb_monitor::audit_topic(),
        inner.broker.id().to_string(),
        now,
        revoke,
    );
    if audit.sign(&inner.credential).is_ok() {
        inner.broker.publish_internal(audit);
    }
}

/// Publishes a GAUGE_INTEREST probe (§3.5).
fn gauge_interest(inner: &EngineInner, session: &mut Session, now: u64) {
    let Some(token) = session.token.clone() else {
        return;
    };
    let msg = Message::new(
        inner.broker.next_message_id(),
        topics::gauge_interest(&session.trace_topic),
        inner.broker.id().to_string(),
        now,
        Payload::GaugeInterestRequest {
            secured: session.trace_key.is_some(),
        },
    )
    .with_token(token);
    inner.broker.publish_internal(msg);
    session.last_gauge_ms = now;
}

/// Publishes one trace event, applying interest gating, encryption and
/// token attachment. Returns the trace context minted for the message
/// (so callers can chain further spans under it), or `None` when the
/// event was gated, unpublishable or telemetry is off.
fn publish_trace(
    inner: &EngineInner,
    session: &mut Session,
    kind: TraceKind,
    now: u64,
) -> Option<TraceContext> {
    let category = kind.category();
    // Change notifications always flow (they are the "change
    // notifications only" service tier); the rest is interest-gated.
    let gated = category != TraceCategory::ChangeNotifications
        && !session.interest.wants(category);
    if gated {
        inner.metrics.traces_gated.inc();
        return None;
    }
    let Some(token) = session.token.clone() else {
        return None; // cannot publish without delegation (§4.3)
    };
    let ctx = mint_trace(inner);
    let t0 = if ctx.is_some_and(|c| c.sampled) {
        now_ns()
    } else {
        0
    };
    let event = TraceEvent {
        entity_id: session.entity_id.clone(),
        trace_topic: session.trace_topic,
        seq: session.trace_seq,
        timestamp_ms: now,
        kind,
    };
    session.trace_seq += 1;

    let payload = match &session.trace_key {
        Some((key, mode)) => {
            // The iv doubles as the CTR nonce in counter mode.
            let mut iv = [0u8; 16];
            {
                let mut rng = inner.rng.lock();
                (*rng).fill_bytes(&mut iv);
            }
            let encrypted = match mode {
                CipherMode::Cbc => cbc_encrypt(key, &iv, &event.to_bytes()),
                CipherMode::Ctr => ctr_transform(key, &iv, &event.to_bytes()),
            };
            match encrypted {
                Ok(ciphertext) => Payload::EncryptedTrace { iv, ciphertext },
                Err(_) => return None,
            }
        }
        None => Payload::Trace { event },
    };

    let mut msg = Message::new(
        inner.broker.next_message_id(),
        topics::publication(&session.trace_topic, category),
        inner.broker.id().to_string(),
        now,
        payload,
    )
    .with_token(token);
    if let Some(ctx) = ctx {
        msg = msg.with_trace(ctx);
    }
    // Amortized RSA: tag the publication under the trace session key
    // so every broker holding it authenticates with one HMAC on the
    // cached fast path. The token stays attached — receivers without
    // the key (or after the budget runs dry) fall back to it.
    if let Some(key_id) = session.session_key_id {
        let signable = msg.signable_bytes();
        if let Some((seq, mac)) = inner.session_keys.tag(key_id, now, &[&signable]) {
            msg = msg.with_session(SessionTag { key_id, seq, mac });
        }
    }
    inner.broker.publish_internal(msg);
    inner.metrics.traces_published.inc();
    if let Some(ctx) = ctx.filter(|c| c.sampled) {
        // The root span covers event construction, encryption and the
        // hand-off into the broker.
        record_root(inner, &ctx, Stage::TracePublish, t0);
    }
    ctx
}

/// One scheduler pass: expire pings, emit new pings, re-gauge
/// interest, publish periodic network metrics.
fn run_tick(inner: &Arc<EngineInner>) {
    let now = inner.clock.now_ms();
    let mut sessions = inner.sessions.lock();
    for session in sessions.values_mut() {
        // Failure detection.
        match session.detector.on_tick(now) {
            Some(DetectorEvent::Suspect) => {
                inner.metrics.suspicions.inc();
                notify_verdict(inner, &session.entity_id, VerdictKind::Suspect, now);
                let t0 = now_ns();
                if let Some(ctx) = publish_trace(inner, session, TraceKind::FailureSuspicion, now)
                {
                    if ctx.sampled {
                        inner
                            .recorder
                            .record(SpanEvent::new(&ctx, Stage::Verdict, t0, now_ns()));
                    }
                }
            }
            Some(DetectorEvent::Fail) => {
                inner.metrics.failures.inc();
                notify_verdict(inner, &session.entity_id, VerdictKind::Failed, now);
                if let Some(evidence) = session.detector.last_evidence_ms() {
                    inner
                        .metrics
                        .time_to_detect_ms
                        .record(now.saturating_sub(evidence));
                }
                let t0 = now_ns();
                if let Some(ctx) = publish_trace(inner, session, TraceKind::Failed, now) {
                    if ctx.sampled {
                        inner
                            .recorder
                            .record(SpanEvent::new(&ctx, Stage::Verdict, t0, now_ns()));
                    }
                }
            }
            _ => {}
        }

        // Ping issue (failed entities are no longer pinged; they
        // re-enter via a fresh registration or a late response).
        if session.detector.liveness() != Liveness::Failed
            && session.joined
            && session.detector.ping_due(now)
        {
            let seq = session.detector.on_ping_sent(now);
            if let Some(monitor) = inner.monitor.read().as_ref() {
                monitor.on_ping_sent(inner.broker.id(), &session.entity_id, seq, now);
            }
            let ctx = mint_trace(inner);
            let t0 = if ctx.is_some_and(|c| c.sampled) {
                now_ns()
            } else {
                0
            };
            let mut ping = Message::new(
                inner.broker.next_message_id(),
                topics::broker_to_entity(
                    &session.entity_id,
                    &session.trace_topic,
                    &session.session_id,
                ),
                inner.broker.id().to_string(),
                now,
                Payload::Ping {
                    seq,
                    sent_at_ms: now,
                },
            );
            if let Some(ctx) = ctx {
                ping = ping.with_trace(ctx);
            }
            inner.broker.publish_internal(ping);
            inner.metrics.pings_sent.inc();
            if let Some(ctx) = ctx.filter(|c| c.sampled) {
                record_root(inner, &ctx, Stage::PingSend, t0);
            }
        }

        // Session-key rotation: when the budget is spent or the key
        // has aged past 3/4 of its lifetime, mint-adopt-revoke.
        if let Some(key_id) = session.session_key_id {
            if inner.session_keys.needs_rotation(key_id, now) {
                rotate_session_key(inner, session, key_id, now);
            }
        }

        // Periodic interest re-gauging, plus expiry of trackers that
        // stopped answering probes (their gate contribution lapses
        // after several missed probe rounds).
        if session.joined
            && now.saturating_sub(session.last_gauge_ms)
                >= inner.config.gauge_interval.as_millis() as u64
        {
            gauge_interest(inner, session, now);
            let ttl = 4 * inner.config.gauge_interval.as_millis() as u64;
            session.interest.expire_stale(now.saturating_sub(ttl));
        }

        // Periodic network metrics.
        if session.joined
            && now.saturating_sub(session.last_metrics_ms)
                >= inner.config.metrics_interval.as_millis() as u64
        {
            session.last_metrics_ms = now;
            let window = session.detector.window();
            if !window.is_empty() {
                let metrics = nb_wire::trace::NetworkMetrics {
                    loss_rate: window.loss_rate(),
                    transit_delay_ms: window.mean_rtt_ms().unwrap_or(0.0),
                    bandwidth_bps: 0.0,
                    out_of_order_rate: window.out_of_order_rate(),
                };
                publish_trace(inner, session, TraceKind::NetworkMetrics(metrics), now);
            }
        }
    }
}
