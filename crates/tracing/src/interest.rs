//! Tracker-interest bookkeeping for the GAUGE_INTEREST protocol
//! (paper §3.5): "traces are issued by a broker only if there are
//! entities that are interested in receiving traces corresponding to
//! a traced entity."

use nb_crypto::cert::Certificate;
use nb_wire::trace::TraceCategory;
use nb_wire::Topic;
use std::collections::HashMap;

/// A tracker's registered interest.
#[derive(Debug, Clone)]
pub struct TrackerInterest {
    /// The tracker's credentials (needed for secured key delivery).
    pub certificate: Certificate,
    /// Categories the tracker asked for.
    pub categories: Vec<TraceCategory>,
    /// Where the tracker expects key deliveries.
    pub reply_topic: Topic,
    /// Whether this tracker has already been sent the trace key.
    pub key_delivered: bool,
    /// When the tracker last (re)registered, ms since epoch.
    pub refreshed_ms: u64,
}

/// Interest registry for one traced entity.
#[derive(Debug, Default)]
pub struct InterestSet {
    trackers: HashMap<String, TrackerInterest>,
}

impl InterestSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or refreshes) a tracker's interest response.
    pub fn register(&mut self, tracker_id: &str, interest: TrackerInterest) {
        // Preserve key-delivery state across refreshes.
        let delivered = self
            .trackers
            .get(tracker_id)
            .map(|t| t.key_delivered)
            .unwrap_or(false);
        let mut interest = interest;
        interest.key_delivered = interest.key_delivered || delivered;
        self.trackers.insert(tracker_id.to_string(), interest);
    }

    /// Drops trackers that have not refreshed their interest since
    /// `cutoff_ms` — a tracker that stops answering GAUGE_INTEREST
    /// probes stops receiving traces (§3.5's gate stays accurate as
    /// trackers depart). Returns how many were expired.
    pub fn expire_stale(&mut self, cutoff_ms: u64) -> usize {
        let before = self.trackers.len();
        self.trackers.retain(|_, t| t.refreshed_ms >= cutoff_ms);
        before - self.trackers.len()
    }

    /// Whether this tracker has registered before.
    pub fn knows(&self, tracker_id: &str) -> bool {
        self.trackers.contains_key(tracker_id)
    }

    /// Removes a tracker entirely.
    pub fn remove(&mut self, tracker_id: &str) {
        self.trackers.remove(tracker_id);
    }

    /// Whether any tracker wants `category` — the §3.5 publication
    /// gate.
    pub fn wants(&self, category: TraceCategory) -> bool {
        self.trackers
            .values()
            .any(|t| t.categories.contains(&category))
    }

    /// Whether nobody is interested in anything (the entity's broker
    /// can stay silent).
    pub fn is_empty(&self) -> bool {
        self.trackers.is_empty()
    }

    /// Number of registered trackers.
    pub fn len(&self) -> usize {
        self.trackers.len()
    }

    /// Every registered tracker (session-key distribution fans out to
    /// the whole interested set, not just those missing the trace
    /// key).
    pub fn trackers(&self) -> Vec<(String, TrackerInterest)> {
        self.trackers
            .iter()
            .map(|(id, t)| (id.clone(), t.clone()))
            .collect()
    }

    /// Trackers that still need the secret trace key.
    pub fn pending_key_delivery(&self) -> Vec<(String, TrackerInterest)> {
        self.trackers
            .iter()
            .filter(|(_, t)| !t.key_delivered)
            .map(|(id, t)| (id.clone(), t.clone()))
            .collect()
    }

    /// Marks a tracker's key as delivered.
    pub fn mark_key_delivered(&mut self, tracker_id: &str) {
        if let Some(t) = self.trackers.get_mut(tracker_id) {
            t.key_delivered = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::cert::{CertificateAuthority, Validity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cert(name: &str) -> Certificate {
        let mut rng = StdRng::seed_from_u64(name.len() as u64);
        let mut ca = CertificateAuthority::new(
            "ca",
            512,
            Validity::starting_now(0, u64::MAX / 2),
            &mut rng,
        )
        .unwrap();
        ca.issue(name, Validity::starting_now(0, u64::MAX / 2), &mut rng)
            .unwrap()
            .certificate
    }

    fn interest(name: &str, categories: Vec<TraceCategory>) -> TrackerInterest {
        TrackerInterest {
            certificate: cert(name),
            categories,
            reply_topic: Topic::parse(&format!("/replies/{name}")).unwrap(),
            key_delivered: false,
            refreshed_ms: 1_000,
        }
    }

    #[test]
    fn empty_set_gates_everything_off() {
        let set = InterestSet::new();
        assert!(set.is_empty());
        assert!(!set.wants(TraceCategory::AllUpdates));
        assert!(!set.wants(TraceCategory::Load));
    }

    #[test]
    fn category_gating_follows_registrations() {
        let mut set = InterestSet::new();
        set.register(
            "t1",
            interest("t1", vec![TraceCategory::ChangeNotifications]),
        );
        assert!(set.wants(TraceCategory::ChangeNotifications));
        assert!(!set.wants(TraceCategory::AllUpdates));
        set.register("t2", interest("t2", vec![TraceCategory::AllUpdates]));
        assert!(set.wants(TraceCategory::AllUpdates));
        set.remove("t2");
        assert!(!set.wants(TraceCategory::AllUpdates));
    }

    #[test]
    fn refresh_preserves_key_delivery_state() {
        let mut set = InterestSet::new();
        set.register("t1", interest("t1", vec![TraceCategory::Load]));
        assert_eq!(set.pending_key_delivery().len(), 1);
        set.mark_key_delivered("t1");
        assert!(set.pending_key_delivery().is_empty());
        // A refreshed registration must not trigger re-delivery.
        set.register("t1", interest("t1", vec![TraceCategory::Load]));
        assert!(set.pending_key_delivery().is_empty());
    }

    #[test]
    fn stale_trackers_expire() {
        let mut set = InterestSet::new();
        let mut old = interest("t1", vec![TraceCategory::Load]);
        old.refreshed_ms = 1_000;
        let mut fresh = interest("t2", vec![TraceCategory::AllUpdates]);
        fresh.refreshed_ms = 5_000;
        set.register("t1", old);
        set.register("t2", fresh);
        assert_eq!(set.expire_stale(2_000), 1);
        assert!(!set.wants(TraceCategory::Load));
        assert!(set.wants(TraceCategory::AllUpdates));
    }

    #[test]
    fn len_counts_distinct_trackers() {
        let mut set = InterestSet::new();
        set.register("t1", interest("t1", vec![TraceCategory::Load]));
        set.register("t1", interest("t1", vec![TraceCategory::Load]));
        set.register("t2", interest("t2", vec![TraceCategory::Load]));
        assert_eq!(set.len(), 2);
    }
}
