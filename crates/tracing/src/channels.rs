//! Auxiliary (non-constrained) topics used by the runtimes.

use nb_wire::Topic;

/// Where a broker publishes the (sealed) registration response for an
/// entity. The entity subscribes here before registering, solving the
/// bootstrap: the §3.2 session channels only exist once the session id
/// has been delivered.
pub fn registration_reply(entity_id: &str) -> Topic {
    Topic::parse(&format!("/Traces/Entities/{entity_id}/Registration"))
        .expect("valid registration reply topic")
}

/// Where a tracker expects sealed trace-key deliveries (§5.1). Carried
/// in the tracker's interest response as the `reply_topic`.
pub fn key_delivery(tracker_id: &str) -> Topic {
    Topic::parse(&format!("/Traces/Trackers/{tracker_id}/KeyDelivery"))
        .expect("valid key delivery topic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_distinct_per_principal() {
        assert_ne!(registration_reply("a"), registration_reply("b"));
        assert_ne!(key_delivery("a"), key_delivery("b"));
        assert_ne!(registration_reply("a"), key_delivery("a"));
    }

    #[test]
    fn channels_are_not_constrained_topics() {
        use nb_wire::constrained::ConstrainedTopic;
        assert!(ConstrainedTopic::parse(&registration_reply("e"))
            .unwrap()
            .is_none());
        assert!(ConstrainedTopic::parse(&key_delivery("t")).unwrap().is_none());
    }
}
