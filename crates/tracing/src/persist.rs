//! Durable tracker state: journalled trace events and the snapshot
//! codec for [`nb_store::Durable`].
//!
//! A tracker's hard-won state is its [`AvailabilityView`] — the fold
//! of every token-verified, decrypted, freshness-checked trace it has
//! applied. Rebuilding it after a crash would mean waiting for the
//! next heartbeat round (or probing the entity), so the tracker
//! journals each **applied** event and snapshots the folded view.
//!
//! Exactly-once replay falls out of the view's own sequence
//! discipline: [`AvailabilityView::apply`] reports whether an event
//! mutated the view, the tracker only journals when it did, and on
//! recovery the same fold runs over the same accepted events — a
//! record's `traces_seen` after restart equals what it was before the
//! crash, never more.

use crate::view::{AvailabilityView, EntityRecord, EntityStatus};
use nb_store::DurableState;
use nb_wire::codec::{Decode, Encode, Reader, Writer};
use nb_wire::trace::{EntityState, LoadInformation, NetworkMetrics, TraceEvent};
use nb_wire::WireError;

fn status_wire_id(status: EntityStatus) -> u8 {
    match status {
        EntityStatus::Available => 1,
        EntityStatus::Suspected => 2,
        EntityStatus::Failed => 3,
        EntityStatus::Offline => 4,
    }
}

fn status_from_wire_id(tag: u8) -> nb_wire::Result<EntityStatus> {
    match tag {
        1 => Ok(EntityStatus::Available),
        2 => Ok(EntityStatus::Suspected),
        3 => Ok(EntityStatus::Failed),
        4 => Ok(EntityStatus::Offline),
        tag => Err(WireError::UnknownTag {
            what: "entity status",
            tag,
        }),
    }
}

/// The tracker's durable state: a whole availability view.
///
/// The journalled op is the applied [`TraceEvent`] itself; replay is
/// the same fold the live pump performs.
#[derive(Default)]
pub struct TrackerDurableState {
    /// The availability view being made durable. During recovery this
    /// is a fresh private view; the tracker then adopts it as its live
    /// (shared-clone) view.
    pub view: AvailabilityView,
}

impl DurableState for TrackerDurableState {
    type Op = TraceEvent;

    fn apply(&mut self, op: TraceEvent) {
        let _ = self.view.apply(&op);
    }

    fn snapshot_encode(&self, w: &mut Writer) {
        let records = self.view.export();
        w.put_varint(records.len() as u64);
        for (id, r) in &records {
            w.put_str(id);
            w.put_u8(status_wire_id(r.status));
            w.put_option(&r.state, |w, s| w.put_u8(s.wire_id()));
            w.put_u64(r.last_seen_ms);
            w.put_option(&r.load, |w, l| l.encode(w));
            w.put_option(&r.network, |w, n| n.encode(w));
            w.put_u64(r.last_seq);
            w.put_varint(r.traces_seen);
        }
    }

    fn snapshot_decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        let state = TrackerDurableState::default();
        let n = r.get_varint()?;
        for _ in 0..n {
            let id = r.get_str()?;
            let record = EntityRecord {
                status: status_from_wire_id(r.get_u8()?)?,
                state: r.get_option(|r| EntityState::from_wire_id(r.get_u8()?))?,
                last_seen_ms: r.get_u64()?,
                load: r.get_option(LoadInformation::decode)?,
                network: r.get_option(NetworkMetrics::decode)?,
                last_seq: r.get_u64()?,
                traces_seen: r.get_varint()?,
            };
            state.view.restore(id, record);
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::Uuid;
    use nb_store::{Durable, StoreConfig, TempDir};
    use nb_wire::trace::TraceKind;

    fn event(seq: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            entity_id: "e1".to_string(),
            trace_topic: Uuid::nil(),
            seq,
            timestamp_ms: 1000 + seq,
            kind,
        }
    }

    #[test]
    fn snapshot_round_trips_the_view() {
        let mut s = TrackerDurableState::default();
        s.apply(event(1, TraceKind::Join));
        s.apply(event(
            2,
            TraceKind::LoadInformation(LoadInformation {
                cpu_percent: 42.0,
                memory_used_bytes: 10,
                memory_total_bytes: 20,
                workload: 3,
            }),
        ));
        s.apply(event(3, TraceKind::FailureSuspicion));

        let mut w = Writer::new();
        s.snapshot_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = TrackerDurableState::snapshot_decode(&mut r).unwrap();

        let a = s.view.get("e1").unwrap();
        let b = back.view.get("e1").unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(a.last_seq, b.last_seq);
        assert_eq!(a.traces_seen, b.traces_seen);
        assert_eq!(a.load.unwrap().cpu_percent, b.load.unwrap().cpu_percent);
    }

    #[test]
    fn replay_preserves_traces_seen_exactly() {
        let dir = TempDir::new("tracker-persist").unwrap();
        let before;
        {
            let (mut d, live, _) = Durable::<TrackerDurableState>::open(
                dir.path(),
                "tracker",
                StoreConfig::default(),
            )
            .unwrap();
            for seq in 1..=5u64 {
                let ev = event(seq, TraceKind::AllsWell);
                assert!(live.view.apply(&ev));
                d.record(&ev).unwrap();
            }
            // A stale duplicate is rejected by the view and therefore
            // never journalled.
            assert!(!live.view.apply(&event(2, TraceKind::Failed)));
            before = live.view.get("e1").unwrap();
        }
        let (_, recovered, rec) = Durable::<TrackerDurableState>::open(
            dir.path(),
            "tracker",
            StoreConfig::default(),
        )
        .unwrap();
        let after = recovered.view.get("e1").unwrap();
        assert_eq!(rec.records_replayed, 5);
        assert_eq!(after.traces_seen, before.traces_seen);
        assert_eq!(after.last_seq, before.last_seq);
        assert_eq!(after.status, before.status);
    }
}
