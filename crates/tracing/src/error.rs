//! Tracing-layer error type.

use nb_broker::BrokerError;
use nb_crypto::CryptoError;
use nb_tdn::TdnError;
use nb_wire::WireError;
use std::fmt;

/// Errors raised by the tracing runtimes.
#[derive(Debug)]
pub enum TracingError {
    /// Substrate broker error.
    Broker(BrokerError),
    /// Wire encode/decode or token error.
    Wire(WireError),
    /// Cryptographic failure.
    Crypto(CryptoError),
    /// TDN interaction failed.
    Tdn(TdnError),
    /// Registration was rejected by the broker.
    RegistrationRejected(String),
    /// No broker could be discovered.
    NoBroker,
    /// Discovery returned no (authorized) trace topic.
    TopicNotFound(String),
    /// An operation timed out.
    Timeout(&'static str),
    /// A message failed authentication (signature or MAC).
    AuthenticationFailed(&'static str),
    /// The runtime was already stopped.
    Stopped,
}

impl fmt::Display for TracingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracingError::Broker(e) => write!(f, "broker: {e}"),
            TracingError::Wire(e) => write!(f, "wire: {e}"),
            TracingError::Crypto(e) => write!(f, "crypto: {e}"),
            TracingError::Tdn(e) => write!(f, "tdn: {e}"),
            TracingError::RegistrationRejected(r) => write!(f, "registration rejected: {r}"),
            TracingError::NoBroker => write!(f, "no broker discoverable"),
            TracingError::TopicNotFound(e) => write!(f, "no trace topic for entity {e}"),
            TracingError::Timeout(what) => write!(f, "timeout waiting for {what}"),
            TracingError::AuthenticationFailed(what) => {
                write!(f, "authentication failed: {what}")
            }
            TracingError::Stopped => write!(f, "runtime stopped"),
        }
    }
}

impl std::error::Error for TracingError {}

impl From<BrokerError> for TracingError {
    fn from(e: BrokerError) -> Self {
        TracingError::Broker(e)
    }
}

impl From<WireError> for TracingError {
    fn from(e: WireError) -> Self {
        TracingError::Wire(e)
    }
}

impl From<CryptoError> for TracingError {
    fn from(e: CryptoError) -> Self {
        TracingError::Crypto(e)
    }
}

impl From<TdnError> for TracingError {
    fn from(e: TdnError) -> Self {
        TracingError::Tdn(e)
    }
}
