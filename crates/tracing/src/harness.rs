//! One-call deployments for tests, examples and benchmarks.
//!
//! A [`Deployment`] stands up the full stack the paper's experiments
//! need: a certificate authority, a replicated TDN cluster, a broker
//! topology over the simulated network, one tracing engine per broker,
//! and a broker directory — then hands out traced entities and
//! trackers attached to chosen brokers.

use crate::config::{SigningMode, TracingConfig};
use crate::engine::{EngineSetup, TracingEngine};
use crate::entity::{EntityOptions, TracedEntity};
use crate::tracker::{Tracker, TrackerOptions};
use crate::Result;
use nb_broker::discovery::{BrokerDirectory, BrokerRecord};
use nb_broker::network::{BrokerNetwork, Medium};
use nb_broker::BrokerConfig;
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::rsa::RsaPublicKey;
use nb_monitor::MonitorSet;
use nb_obs::{AggregatorConfig, ClusterAggregator, PublisherConfig, TelemetryPublisher};
use nb_tdn::TdnCluster;
use nb_transport::clock::SharedClock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Credential validity used by deployments (effectively unbounded).
fn deployment_validity(now_ms: u64) -> Validity {
    Validity::starting_now(now_ms.saturating_sub(60_000), u64::MAX / 4)
}

/// Broker topology shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `b0 — b1 — … — b(n-1)` (hop-count experiments, Figure 1).
    Chain(usize),
    /// Hub `b0` with `n` spokes (tracker-scaling experiments,
    /// Figure 3).
    Star(usize),
}

/// A complete running deployment.
pub struct Deployment {
    /// Time source shared by every component.
    pub clock: SharedClock,
    /// The broker topology.
    pub network: BrokerNetwork,
    /// One tracing engine per broker.
    pub engines: Vec<TracingEngine>,
    /// The replicated topic-discovery cluster.
    pub tdns: TdnCluster,
    /// The broker directory (secure broker discovery).
    pub directory: BrokerDirectory,
    ca: Mutex<CertificateAuthority>,
    ca_key: RsaPublicKey,
    config: TracingConfig,
    rng: Mutex<StdRng>,
    seed: AtomicU64,
    monitors: Mutex<Option<MonitorSet>>,
    telemetry: Mutex<Option<ClusterObs>>,
}

/// The deployment's telemetry plane: one signed
/// [`TelemetryPublisher`] per broker, engine and TDN, plus a
/// [`ClusterAggregator`] subscribed to the Obs topic at broker 0 that
/// authenticates every frame against the deployment's `Obs`
/// credential.
///
/// Cheap to clone (shared internals). Deterministic tests drive it by
/// hand — [`tick`][ClusterObs::tick] after advancing a `MockClock`
/// (or [`publish_all`][ClusterObs::publish_all]), then
/// [`pump`][ClusterObs::pump] to drain delivered frames into the
/// aggregator. System-clock deployments call
/// [`start`][ClusterObs::start] once and read the aggregator at will.
#[derive(Clone)]
pub struct ClusterObs {
    inner: std::sync::Arc<ObsInner>,
}

struct ObsInner {
    publishers: Vec<TelemetryPublisher>,
    aggregator: ClusterAggregator,
    rx: crossbeam::channel::Receiver<nb_wire::Message>,
    key: RsaPublicKey,
    started: std::sync::atomic::AtomicBool,
}

impl ClusterObs {
    /// Every node's publisher (brokers, then engines, then TDNs).
    pub fn publishers(&self) -> &[TelemetryPublisher] {
        &self.inner.publishers
    }

    /// The mesh-fed cluster aggregator.
    pub fn aggregator(&self) -> &ClusterAggregator {
        &self.inner.aggregator
    }

    /// Public key of the `Obs` credential the publishers sign with.
    pub fn key(&self) -> RsaPublicKey {
        self.inner.key.clone()
    }

    /// Polls every publisher's clock-driven schedule; returns how many
    /// published.
    pub fn tick(&self) -> usize {
        self.inner.publishers.iter().filter(|p| p.tick()).count()
    }

    /// Forces a frame out of every publisher (ignoring cadence).
    pub fn publish_all(&self) {
        for p in &self.inner.publishers {
            p.publish_now();
        }
    }

    /// Drains frames already delivered to the aggregator's
    /// subscription into the aggregator; returns how many messages
    /// were consumed. Non-blocking.
    pub fn pump(&self) -> usize {
        let mut n = 0;
        while let Ok(msg) = self.inner.rx.try_recv() {
            self.inner.aggregator.ingest(&msg);
            n += 1;
        }
        n
    }

    /// Pumps until the aggregator has accepted at least `min` frames
    /// or `timeout` elapses (frames from remote brokers cross
    /// simulated links asynchronously); returns whether the target was
    /// reached.
    pub fn pump_until_accepted(&self, min: u64, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            self.pump();
            let accepted = self
                .inner
                .aggregator
                .metrics_snapshot()
                .counter("obs.frames.accepted")
                .unwrap_or(0);
            if accepted >= min {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Spawns the background plane for system-clock deployments: each
    /// publisher's pump plus one drain thread feeding the aggregator.
    /// Idempotent; the drain thread exits when the last `ClusterObs`
    /// clone is dropped.
    pub fn start(&self) {
        if self
            .inner
            .started
            .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            return;
        }
        for p in &self.inner.publishers {
            p.start();
        }
        let weak = std::sync::Arc::downgrade(&self.inner);
        std::thread::Builder::new()
            .name("obs-aggregate".into())
            .spawn(move || loop {
                let Some(inner) = weak.upgrade() else { return };
                match inner
                    .rx
                    .recv_timeout(std::time::Duration::from_millis(100))
                {
                    Ok(msg) => {
                        inner.aggregator.ingest(&msg);
                        while let Ok(more) = inner.rx.try_recv() {
                            inner.aggregator.ingest(&more);
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            })
            .expect("spawn obs aggregate thread");
    }
}

impl Deployment {
    /// Builds a deployment over simulated links with the given
    /// behaviour.
    pub fn new(
        topology: Topology,
        link: LinkConfig,
        clock: SharedClock,
        config: TracingConfig,
    ) -> Result<Self> {
        Self::over(topology, Medium::Sim(link), clock, config)
    }

    /// Builds a deployment over an explicit medium (simulated links,
    /// real TCP, or real UDP — the paper's §6.1 transport comparison).
    pub fn over(
        topology: Topology,
        medium: Medium,
        clock: SharedClock,
        config: TracingConfig,
    ) -> Result<Self> {
        let now = clock.now_ms();
        let validity = deployment_validity(now);
        let mut rng = StdRng::seed_from_u64(0xdeb1);
        let mut ca = CertificateAuthority::new("deployment-ca", config.rsa_bits, validity, &mut rng)?;
        let ca_key = ca.certificate().public_key.clone();

        let tdns = TdnCluster::new(3, &mut ca, validity, clock.clone(), &mut rng)?;
        let tdn_keys: HashMap<String, RsaPublicKey> = (0..tdns.len())
            .map(|i| {
                let node = tdns.node(i);
                (node.id().to_string(), node.public_key())
            })
            .collect();

        let broker_cfg = BrokerConfig {
            token_skew_ms: config.token_skew_ms,
            telemetry: config.telemetry.clone(),
            link_supervision: config.link_supervision.clone(),
            ..BrokerConfig::default()
        };
        let network = match topology {
            Topology::Chain(n) => BrokerNetwork::chain_over(n, medium, clock.clone(), broker_cfg)?,
            Topology::Star(leaves) => {
                BrokerNetwork::star_over(leaves, medium, clock.clone(), broker_cfg)?
            }
        };
        network.wait_for_mesh(std::time::Duration::from_secs(10));

        let directory = BrokerDirectory::new();
        let mut engines = Vec::with_capacity(network.len());
        for (i, broker) in network.brokers.iter().enumerate() {
            let credential = ca.issue(&format!("broker:{}", broker.id()), validity, &mut rng)?;
            directory.register(BrokerRecord {
                broker_id: broker.id().to_string(),
                certificate: credential.certificate.clone(),
                load: 0,
            });
            engines.push(TracingEngine::start(EngineSetup {
                broker: broker.clone(),
                credential,
                ca_key: ca_key.clone(),
                tdn_keys: tdn_keys.clone(),
                clock: clock.clone(),
                config: config.clone(),
                seed: 0xe71 + i as u64,
            }));
        }

        Ok(Deployment {
            clock,
            network,
            engines,
            tdns,
            directory,
            ca: Mutex::new(ca),
            ca_key,
            config,
            rng: Mutex::new(rng),
            seed: AtomicU64::new(1),
            monitors: Mutex::new(None),
            telemetry: Mutex::new(None),
        })
    }

    /// Stands up the cluster telemetry plane (idempotent — later calls
    /// return the same handle).
    ///
    /// Issues one `Obs` credential, builds a signed
    /// [`TelemetryPublisher`] for every broker, engine and TDN (TDN
    /// frames enter the mesh through their index-matched broker), and
    /// subscribes a [`ClusterAggregator`] to the Obs topic at broker 0
    /// with signature verification required. Nothing publishes until
    /// the caller drives the handle ([`ClusterObs::tick`] /
    /// [`ClusterObs::publish_all`]) or starts the background plane
    /// ([`ClusterObs::start`]).
    pub fn telemetry(&self, config: PublisherConfig) -> Result<ClusterObs> {
        let mut slot = self.telemetry.lock();
        if let Some(existing) = &*slot {
            return Ok(existing.clone());
        }
        let credential = {
            let validity = deployment_validity(self.clock.now_ms());
            let mut rng = self.rng.lock();
            self.ca.lock().issue("Obs", validity, &mut *rng)?
        };
        let key = credential.certificate.public_key.clone();

        let mut publishers = Vec::new();
        for broker in &self.network.brokers {
            publishers.push(
                broker
                    .telemetry_publisher(config.clone())
                    .signed(credential.clone()),
            );
        }
        for engine in &self.engines {
            publishers.push(
                engine
                    .telemetry_publisher(config.clone())
                    .signed(credential.clone()),
            );
        }
        for i in 0..self.tdns.len() {
            let node = self.tdns.node(i);
            let carrier = self.network.brokers[i % self.network.brokers.len()].clone();
            publishers.push(
                node.telemetry_publisher(
                    std::sync::Arc::new(move |msg| carrier.publish_internal(msg)),
                    config.clone(),
                )
                .signed(credential.clone()),
            );
        }

        let aggregator = ClusterAggregator::new(AggregatorConfig::default());
        aggregator.require_signatures(key.clone());
        let home = &self.network.brokers[0];
        let consumer = format!("obs-aggregator@{}", home.id());
        let rx = home.register_internal(&consumer);
        home.subscribe_internal(&consumer, nb_obs::telemetry_topic())?;

        let obs = ClusterObs {
            inner: std::sync::Arc::new(ObsInner {
                publishers,
                aggregator,
                rx,
                key,
                started: std::sync::atomic::AtomicBool::new(false),
            }),
        };
        *slot = Some(obs.clone());
        Ok(obs)
    }

    /// Attaches online runtime-verification monitors to the whole
    /// deployment (idempotent — later calls return the same set).
    ///
    /// Builds the standard property set
    /// ([`nb_monitor::standard_properties`]) with the broker TTL
    /// bound, wires it into every broker's data plane and every
    /// engine's verdict path, and publishes signed violation reports
    /// on the audit topic ([`nb_monitor::audit_topic`]) through broker
    /// 0. The strict TTL-presence property is enabled only when
    /// telemetry is on (untraced publications are legitimate
    /// otherwise).
    pub fn monitors(&self) -> Result<MonitorSet> {
        let mut slot = self.monitors.lock();
        if let Some(existing) = &*slot {
            return Ok(existing.clone());
        }
        let credential = {
            let validity = deployment_validity(self.clock.now_ms());
            let mut rng = self.rng.lock();
            self.ca.lock().issue("Monitor", validity, &mut *rng)?
        };
        let specs = nb_monitor::standard_properties(
            BrokerConfig::default().max_hops,
            self.config.telemetry.enabled,
        );
        let monitor = MonitorSet::new(specs, credential, self.config.token_skew_ms);
        for broker in &self.network.brokers {
            broker.attach_monitor(monitor.clone());
        }
        for engine in &self.engines {
            engine.attach_monitor(monitor.clone());
        }
        let audit_broker = self.network.brokers[0].clone();
        monitor.set_audit_sink(std::sync::Arc::new(move |msg| {
            audit_broker.publish_internal(msg);
        }));
        *slot = Some(monitor.clone());
        Ok(monitor)
    }

    /// The CA's public key (trust anchor).
    pub fn ca_key(&self) -> RsaPublicKey {
        self.ca_key.clone()
    }

    /// The scheme configuration in force.
    pub fn config(&self) -> &TracingConfig {
        &self.config
    }

    /// Issues a credential for `subject`.
    pub fn issue(&self, subject: &str) -> Result<Credential> {
        let validity = deployment_validity(self.clock.now_ms());
        let mut rng = self.rng.lock();
        Ok(self.ca.lock().issue(subject, validity, &mut *rng)?)
    }

    /// The tracing engine at broker `idx`.
    pub fn engine(&self, idx: usize) -> &TracingEngine {
        &self.engines[idx]
    }

    /// Forces a scheduler pass on every engine (deterministic tests).
    pub fn tick_all(&self) {
        for engine in &self.engines {
            engine.tick_now();
        }
    }

    /// One merged metrics snapshot for the whole deployment: every
    /// broker's `broker.*` family and every engine's `tracing.*` family
    /// (each prefixed by the broker id), the TDN cluster's `tdn.*`
    /// families, and the process-wide [`nb_metrics::global`] registry
    /// (`crypto.*`, `token.*`, `transport.*`).
    pub fn metrics_snapshot(&self) -> nb_metrics::Snapshot {
        let mut merged = nb_metrics::global().snapshot();
        for broker in &self.network.brokers {
            merged = merged.merge(broker.metrics_snapshot().prefixed(broker.id()));
        }
        for (broker, engine) in self.network.brokers.iter().zip(&self.engines) {
            merged = merged.merge(engine.metrics_snapshot().prefixed(broker.id()));
        }
        merged = merged.merge(self.tdns.metrics_snapshot());
        if let Some(monitor) = &*self.monitors.lock() {
            merged = merged.merge(monitor.metrics_snapshot());
        }
        merged
    }

    /// Captures every flight recorder in the deployment — each
    /// broker's, each engine's (named `tracing-engine@<broker>`), and
    /// each TDN member's — ready for the `nb_telemetry` exporters.
    /// Entity and tracker recorders live on those handles; capture and
    /// append them separately if needed.
    pub fn telemetry_spans(&self) -> Vec<nb_telemetry::NodeSpans> {
        let mut spans = self.network.telemetry_spans();
        for engine in &self.engines {
            spans.push(nb_telemetry::NodeSpans::capture(engine.flight_recorder()));
        }
        spans.extend(self.tdns.telemetry_spans());
        spans
    }

    /// Starts a traced entity attached to broker `idx`.
    pub fn traced_entity(
        &self,
        idx: usize,
        entity_id: &str,
        restrictions: DiscoveryRestrictions,
        signing_mode: SigningMode,
        secured: bool,
    ) -> Result<TracedEntity> {
        let credential = self.issue(&format!("entity:{entity_id}"))?;
        let client = self.network.attach_client(idx, entity_id)?;
        let broker_key = self.engines[idx].public_key();
        TracedEntity::start(
            client,
            &self.tdns,
            self.clock.clone(),
            EntityOptions {
                entity_id: entity_id.to_string(),
                credential,
                broker_key,
                restrictions,
                topic_lifetime_ms: 0,
                signing_mode,
                secured,
                config: self.config.clone(),
                seed: self.seed.fetch_add(1, Ordering::Relaxed) * 7919,
            },
        )
    }

    /// Starts a tracker attached to broker `idx`, tracking
    /// `entity_id` with the given category interests.
    pub fn tracker(
        &self,
        idx: usize,
        tracker_id: &str,
        entity_id: &str,
        interests: Vec<TraceCategory>,
    ) -> Result<Tracker> {
        self.tracker_with_dir(idx, tracker_id, entity_id, interests, None)
    }

    /// Like [`Deployment::tracker`] but durable: with `data_dir` set
    /// the tracker journals applied traces there and recovers its
    /// availability view when restarted over the same directory
    /// (kill-and-restart recovery tests).
    pub fn tracker_with_dir(
        &self,
        idx: usize,
        tracker_id: &str,
        entity_id: &str,
        interests: Vec<TraceCategory>,
        data_dir: Option<std::path::PathBuf>,
    ) -> Result<Tracker> {
        let credential = self.issue(&format!("tracker:{tracker_id}"))?;
        let client = self.network.attach_client(idx, tracker_id)?;
        Tracker::start(
            client,
            &self.tdns,
            self.clock.clone(),
            entity_id,
            TrackerOptions {
                tracker_id: tracker_id.to_string(),
                credential,
                interests,
                config: self.config.clone(),
                data_dir,
                store: nb_store::StoreConfig::default(),
            },
        )
    }
}
