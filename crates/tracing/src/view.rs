//! The tracker's availability view: the distilled answer to "is this
//! entity up, and how is it doing?".

use nb_wire::trace::{EntityState, LoadInformation, NetworkMetrics, TraceEvent, TraceKind};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregate availability judgement for one entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityStatus {
    /// JOIN seen, heartbeats flowing.
    Available,
    /// FAILURE_SUSPICION received.
    Suspected,
    /// FAILED received.
    Failed,
    /// DISCONNECT or REVERTING_TO_SILENT_MODE received.
    Offline,
}

/// Everything a tracker knows about one traced entity.
#[derive(Debug, Clone)]
pub struct EntityRecord {
    /// Aggregate status.
    pub status: EntityStatus,
    /// Last reported lifecycle state, if any.
    pub state: Option<EntityState>,
    /// Timestamp of the most recent trace.
    pub last_seen_ms: u64,
    /// Most recent load report.
    pub load: Option<LoadInformation>,
    /// Most recent network metrics.
    pub network: Option<NetworkMetrics>,
    /// Sequence number of the most recent trace applied.
    pub last_seq: u64,
    /// Count of traces applied for this entity.
    pub traces_seen: u64,
}

/// Change notification shared by every clone of a view: waiters sleep
/// on the condition variable, [`AvailabilityView::apply`] signals it
/// after each mutation.
struct Notify {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Default for Notify {
    fn default() -> Self {
        Notify {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        }
    }
}

/// A concurrently readable availability map. Clones share state.
#[derive(Clone, Default)]
pub struct AvailabilityView {
    entities: Arc<RwLock<HashMap<String, EntityRecord>>>,
    notify: Arc<Notify>,
}

impl AvailabilityView {
    /// Creates an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one trace event. Events older than the newest applied
    /// sequence are ignored (traces can arrive out of order across the
    /// broker mesh).
    ///
    /// Returns `true` when the event mutated the view, `false` when it
    /// was discarded as stale — the caller's signal for whether the
    /// event is worth journalling (see `nb_tracing::persist`).
    pub fn apply(&self, event: &TraceEvent) -> bool {
        {
            let mut entities = self.entities.write();
            let record = entities
                .entry(event.entity_id.clone())
                .or_insert(EntityRecord {
                    status: EntityStatus::Available,
                    state: None,
                    last_seen_ms: 0,
                    load: None,
                    network: None,
                    last_seq: 0,
                    traces_seen: 0,
                });
            if event.seq < record.last_seq {
                return false; // stale
            }
            record.last_seq = event.seq;
            record.last_seen_ms = event.timestamp_ms;
            record.traces_seen += 1;
            match &event.kind {
                TraceKind::Join | TraceKind::AllsWell => {
                    record.status = EntityStatus::Available;
                }
                TraceKind::FailureSuspicion => record.status = EntityStatus::Suspected,
                TraceKind::Failed => record.status = EntityStatus::Failed,
                TraceKind::Disconnect | TraceKind::RevertingToSilentMode => {
                    record.status = EntityStatus::Offline;
                }
                TraceKind::StateTransition { to, .. } => {
                    record.state = Some(*to);
                    if *to == EntityState::Shutdown {
                        record.status = EntityStatus::Offline;
                    } else {
                        record.status = EntityStatus::Available;
                    }
                }
                TraceKind::LoadInformation(load) => record.load = Some(*load),
                TraceKind::NetworkMetrics(metrics) => record.network = Some(*metrics),
                TraceKind::GaugeInterest => {}
            }
        } // write lock released before signalling — see wait_until
        let mut generation = self.notify.generation.lock();
        *generation += 1;
        self.notify.cv.notify_all();
        true
    }

    /// Every record, sorted by entity id — the deterministic iteration
    /// order the durable snapshot codec needs.
    pub fn export(&self) -> Vec<(String, EntityRecord)> {
        let mut all: Vec<(String, EntityRecord)> = self
            .entities
            .read()
            .iter()
            .map(|(id, r)| (id.clone(), r.clone()))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Installs a recovered record wholesale (snapshot restore). Used
    /// before the consuming pump starts, so no waiters are signalled.
    pub fn restore(&self, entity_id: String, record: EntityRecord) {
        self.entities.write().insert(entity_id, record);
    }

    /// Blocks until `pred(self)` holds (true) or `timeout` elapses
    /// (false). Purely event-driven: the waiter sleeps on a condition
    /// variable signalled by [`AvailabilityView::apply`], so it wakes
    /// exactly when the view changes instead of sleep-polling.
    ///
    /// Missed-wakeup safety: the predicate is evaluated while holding
    /// the notification lock, and `apply` only signals *after*
    /// releasing the data lock and *while* holding the notification
    /// lock — a change is therefore either visible to the predicate or
    /// wakes the waiter.
    pub fn wait_until<F>(&self, timeout: Duration, pred: F) -> bool
    where
        F: Fn(&AvailabilityView) -> bool,
    {
        let deadline = Instant::now() + timeout;
        let mut generation = self.notify.generation.lock();
        loop {
            if pred(self) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.notify
                .cv
                .wait_for(&mut generation, deadline.duration_since(now));
        }
    }

    /// Blocks until `entity_id` reaches `status` (true) or `timeout`
    /// elapses (false).
    pub fn wait_for_status(
        &self,
        entity_id: &str,
        status: EntityStatus,
        timeout: Duration,
    ) -> bool {
        self.wait_until(timeout, |view| view.status(entity_id) == Some(status))
    }

    /// Current record for an entity.
    pub fn get(&self, entity_id: &str) -> Option<EntityRecord> {
        self.entities.read().get(entity_id).cloned()
    }

    /// Current status for an entity.
    pub fn status(&self, entity_id: &str) -> Option<EntityStatus> {
        self.entities.read().get(entity_id).map(|r| r.status)
    }

    /// All known entity ids.
    pub fn entities(&self) -> Vec<String> {
        self.entities.read().keys().cloned().collect()
    }

    /// Entities currently considered available.
    pub fn available(&self) -> Vec<String> {
        self.entities
            .read()
            .iter()
            .filter(|(_, r)| r.status == EntityStatus::Available)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Total traces applied across all entities.
    pub fn total_traces(&self) -> u64 {
        self.entities.read().values().map(|r| r.traces_seen).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::Uuid;

    fn event(seq: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            entity_id: "e1".to_string(),
            trace_topic: Uuid::nil(),
            seq,
            timestamp_ms: 1000 + seq,
            kind,
        }
    }

    #[test]
    fn join_marks_available() {
        let view = AvailabilityView::new();
        view.apply(&event(1, TraceKind::Join));
        assert_eq!(view.status("e1"), Some(EntityStatus::Available));
        assert_eq!(view.available(), vec!["e1".to_string()]);
    }

    #[test]
    fn lifecycle_progression() {
        let view = AvailabilityView::new();
        view.apply(&event(1, TraceKind::Join));
        view.apply(&event(2, TraceKind::FailureSuspicion));
        assert_eq!(view.status("e1"), Some(EntityStatus::Suspected));
        view.apply(&event(3, TraceKind::Failed));
        assert_eq!(view.status("e1"), Some(EntityStatus::Failed));
        view.apply(&event(4, TraceKind::AllsWell));
        assert_eq!(view.status("e1"), Some(EntityStatus::Available));
        view.apply(&event(5, TraceKind::RevertingToSilentMode));
        assert_eq!(view.status("e1"), Some(EntityStatus::Offline));
    }

    #[test]
    fn stale_events_are_ignored() {
        let view = AvailabilityView::new();
        view.apply(&event(10, TraceKind::Failed));
        view.apply(&event(5, TraceKind::AllsWell)); // late, stale
        assert_eq!(view.status("e1"), Some(EntityStatus::Failed));
    }

    #[test]
    fn state_transitions_update_state() {
        let view = AvailabilityView::new();
        view.apply(&event(
            1,
            TraceKind::StateTransition {
                from: None,
                to: EntityState::Initializing,
            },
        ));
        assert_eq!(view.get("e1").unwrap().state, Some(EntityState::Initializing));
        view.apply(&event(
            2,
            TraceKind::StateTransition {
                from: Some(EntityState::Initializing),
                to: EntityState::Shutdown,
            },
        ));
        let r = view.get("e1").unwrap();
        assert_eq!(r.state, Some(EntityState::Shutdown));
        assert_eq!(r.status, EntityStatus::Offline);
    }

    #[test]
    fn load_and_metrics_are_retained() {
        let view = AvailabilityView::new();
        view.apply(&event(
            1,
            TraceKind::LoadInformation(LoadInformation {
                cpu_percent: 80.0,
                memory_used_bytes: 100,
                memory_total_bytes: 200,
                workload: 4,
            }),
        ));
        view.apply(&event(
            2,
            TraceKind::NetworkMetrics(NetworkMetrics {
                loss_rate: 0.1,
                transit_delay_ms: 2.0,
                bandwidth_bps: 1e6,
                out_of_order_rate: 0.0,
            }),
        ));
        let r = view.get("e1").unwrap();
        assert_eq!(r.load.unwrap().cpu_percent, 80.0);
        assert_eq!(r.network.unwrap().loss_rate, 0.1);
        assert_eq!(r.traces_seen, 2);
    }

    #[test]
    fn clones_share_state() {
        let view = AvailabilityView::new();
        let view2 = view.clone();
        view.apply(&event(1, TraceKind::Join));
        assert_eq!(view2.status("e1"), Some(EntityStatus::Available));
        assert_eq!(view2.total_traces(), 1);
    }

    #[test]
    fn wait_for_status_wakes_on_apply() {
        let view = AvailabilityView::new();
        let waiter = view.clone();
        let t = std::thread::spawn(move || {
            waiter.wait_for_status("e1", EntityStatus::Failed, Duration::from_secs(5))
        });
        // Give the waiter a moment to park, then publish the change.
        std::thread::sleep(Duration::from_millis(20));
        view.apply(&event(1, TraceKind::Failed));
        assert!(t.join().unwrap());
        // Timeout path: a condition that never comes returns false.
        assert!(!view.wait_for_status("ghost", EntityStatus::Available, Duration::from_millis(30)));
    }

    #[test]
    fn unknown_entity_is_none() {
        let view = AvailabilityView::new();
        assert_eq!(view.status("ghost"), None);
        assert!(view.get("ghost").is_none());
        assert!(view.entities().is_empty());
    }
}
