//! Tuning knobs for the tracing scheme.

use std::time::Duration;

/// How a traced entity authenticates its messages to its hosting
/// broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigningMode {
    /// Every message carries an RSA/SHA-1 signature (the paper's base
    /// scheme, §4.2).
    RsaSign,
    /// After a sealed key exchange, messages carry an HMAC under the
    /// shared session key instead — "the encryption/decryption costs
    /// are cheaper than the corresponding signing/verification cost"
    /// (§6.3 optimization).
    SymmetricKey,
}

/// Engine/entity configuration.
#[derive(Debug, Clone)]
pub struct TracingConfig {
    /// Cipher mode negotiated for encrypted traces (§5.1 sends "the
    /// encryption algorithm and padding scheme" with the trace key).
    pub trace_cipher: nb_crypto::modes::CipherMode,
    /// Base interval between pings to a healthy entity.
    pub ping_interval: Duration,
    /// Floor for the adaptive interval (the interval halves on
    /// consecutive losses "to hasten the failure detection").
    pub min_ping_interval: Duration,
    /// Time the broker waits for a ping response before recording a
    /// loss.
    pub response_timeout: Duration,
    /// Consecutive losses before FAILURE_SUSPICION is published.
    pub suspicion_threshold: usize,
    /// Additional consecutive losses (beyond suspicion) before FAILED.
    pub failure_threshold: usize,
    /// Size of the per-entity ping history window (the paper keeps
    /// the last 10 pings).
    pub ping_window: usize,
    /// Scheduler tick for the engine's background thread.
    pub tick: Duration,
    /// Whether the engine runs its own background ticker. Disable for
    /// deterministic tests driven by [`crate::TracingEngine::tick_now`].
    pub auto_tick: bool,
    /// Interval between GAUGE_INTEREST probes.
    pub gauge_interval: Duration,
    /// Interval between NETWORK_METRICS publications.
    pub metrics_interval: Duration,
    /// Lifetime of minted authorization tokens, ms.
    pub token_lifetime_ms: u64,
    /// Clock-skew tolerance for token validation, ms (NTP keeps the
    /// paper's clocks within 30–100 ms).
    pub token_skew_ms: u64,
    /// RSA modulus size for delegate key pairs and session keys.
    /// The paper uses 1024; tests may use 512 for speed.
    pub rsa_bits: usize,
    /// Establish a per-(entity, tracker-set) trace session key at
    /// start-up: the entity announces an HMAC-SHA256 key via an
    /// RSA-signed, RSA-sealed handshake, and every trace publication
    /// then carries a cheap session MAC instead of relying on
    /// per-message RSA token verification (amortized RSA). Opt-in;
    /// traces keep carrying tokens either way, so receivers without
    /// the key fall back to the full RSA path.
    pub session_keys: bool,
    /// Trace session-key lifetime, ms (the engine rotates at 3/4 of
    /// this; see `nb_crypto::SessionKeyring::needs_rotation`).
    pub session_lifetime_ms: u64,
    /// Messages a trace session key may tag before rotation is due.
    pub session_max_messages: u64,
    /// Causal-tracing knobs, shared by the brokers, engines, entities
    /// and trackers of a deployment (see `docs/OBSERVABILITY.md`,
    /// "Causal tracing").
    pub telemetry: nb_telemetry::TelemetryConfig,
    /// Link-failure fault tolerance for the deployment's brokers: when
    /// set, every broker link runs under a supervisor that buffers
    /// through outages and reconnects with backoff (see
    /// `docs/ARCHITECTURE.md`, "Fault tolerance"). `None` keeps the
    /// historical tear-down-on-failure behaviour.
    pub link_supervision: Option<nb_transport::supervisor::SupervisorConfig>,
}

impl Default for TracingConfig {
    fn default() -> Self {
        TracingConfig {
            trace_cipher: nb_crypto::modes::CipherMode::Cbc,
            ping_interval: Duration::from_millis(500),
            min_ping_interval: Duration::from_millis(50),
            response_timeout: Duration::from_millis(250),
            suspicion_threshold: 3,
            failure_threshold: 3,
            ping_window: 10,
            tick: Duration::from_millis(20),
            auto_tick: true,
            gauge_interval: Duration::from_secs(5),
            metrics_interval: Duration::from_secs(2),
            token_lifetime_ms: 60_000,
            token_skew_ms: 100,
            rsa_bits: 1024,
            session_keys: false,
            session_lifetime_ms: 600_000,
            session_max_messages: 1 << 16,
            telemetry: nb_telemetry::TelemetryConfig::default(),
            link_supervision: None,
        }
    }
}

impl TracingConfig {
    /// A configuration suited to fast, deterministic tests: small
    /// keys, manual ticking, short intervals.
    pub fn for_tests() -> Self {
        TracingConfig {
            trace_cipher: nb_crypto::modes::CipherMode::Cbc,
            ping_interval: Duration::from_millis(100),
            min_ping_interval: Duration::from_millis(10),
            response_timeout: Duration::from_millis(50),
            suspicion_threshold: 2,
            failure_threshold: 2,
            ping_window: 10,
            tick: Duration::from_millis(5),
            auto_tick: false,
            gauge_interval: Duration::from_millis(500),
            metrics_interval: Duration::from_millis(500),
            token_lifetime_ms: 60_000,
            token_skew_ms: 100,
            rsa_bits: 512,
            session_keys: false,
            session_lifetime_ms: 600_000,
            session_max_messages: 1 << 16,
            telemetry: nb_telemetry::TelemetryConfig::default(),
            link_supervision: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let c = TracingConfig::default();
        assert_eq!(c.rsa_bits, 1024);
        assert_eq!(c.ping_window, 10);
        assert!(c.min_ping_interval < c.ping_interval);
        assert!((30..=100_000).contains(&c.token_skew_ms));
    }

    #[test]
    fn test_profile_is_fast() {
        let c = TracingConfig::for_tests();
        assert!(!c.auto_tick);
        assert!(c.rsa_bits <= 512);
    }
}
