//! The failure-detection state machine (paper §3.3).
//!
//! "An entity is pinged based on whether the ping interval has
//! elapsed. Depending on the history of the past pings … this ping
//! interval is varied. If consecutive pings do not have responses
//! associated with them, the ping interval is reduced to hasten the
//! failure detection of the entity. If a ping response is not
//! received for a set of successive pings …, a FAILURE_SUSPICION
//! trace is reported … Lack of responses … for additional pings is
//! taken as a sign that the traced entity has failed."
//!
//! The detector is a pure state machine over explicit timestamps, so
//! it is deterministic under a mock clock.

use crate::config::TracingConfig;
use nb_transport::metrics::{PingOutcome, PingWindow, RttEstimator};
use std::collections::HashMap;

/// Liveness verdict for a traced entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Responding normally.
    Alive,
    /// Missed `suspicion_threshold` consecutive pings.
    Suspected,
    /// Missed `suspicion_threshold + failure_threshold` consecutive
    /// pings.
    Failed,
}

/// Events the detector asks its driver to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEvent {
    /// Publish FAILURE_SUSPICION.
    Suspect,
    /// Publish FAILED.
    Fail,
    /// The entity answered again after suspicion/failure.
    Recover,
}

/// Per-entity ping bookkeeping and verdicts.
#[derive(Debug)]
pub struct FailureDetector {
    base_interval_ms: u64,
    min_interval_ms: u64,
    response_timeout_ms: u64,
    suspicion_threshold: usize,
    failure_threshold: usize,
    window: PingWindow,
    rtt: RttEstimator,
    outstanding: HashMap<u64, u64>,
    next_seq: u64,
    last_ping_ms: Option<u64>,
    highest_answered_seq: Option<u64>,
    /// Timestamp of the last evidence of liveness: the last answered
    /// ping, or the first ping sent for entities that never answered.
    /// Drives the time-to-detection histogram.
    last_evidence_ms: Option<u64>,
    liveness: Liveness,
}

impl FailureDetector {
    /// Creates a detector from the scheme configuration.
    pub fn new(config: &TracingConfig) -> Self {
        FailureDetector {
            base_interval_ms: config.ping_interval.as_millis() as u64,
            min_interval_ms: config.min_ping_interval.as_millis() as u64,
            response_timeout_ms: config.response_timeout.as_millis() as u64,
            suspicion_threshold: config.suspicion_threshold,
            failure_threshold: config.failure_threshold,
            window: PingWindow::new(config.ping_window),
            rtt: RttEstimator::new(),
            outstanding: HashMap::new(),
            next_seq: 1,
            last_ping_ms: None,
            highest_answered_seq: None,
            last_evidence_ms: None,
            liveness: Liveness::Alive,
        }
    }

    /// Current liveness verdict.
    pub fn liveness(&self) -> Liveness {
        self.liveness
    }

    /// The adaptive ping interval: halves per trailing consecutive
    /// loss, floored at the configured minimum.
    pub fn current_interval_ms(&self) -> u64 {
        let losses = self.window.consecutive_losses().min(16) as u32;
        (self.base_interval_ms >> losses).max(self.min_interval_ms)
    }

    /// Whether a new ping is due at `now_ms`.
    pub fn ping_due(&self, now_ms: u64) -> bool {
        match self.last_ping_ms {
            None => true,
            Some(last) => now_ms.saturating_sub(last) >= self.current_interval_ms(),
        }
    }

    /// Registers a ping send; returns its sequence number (pings carry
    /// "a monotonically increasing message number and the timestamp").
    pub fn on_ping_sent(&mut self, now_ms: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.insert(seq, now_ms);
        self.last_ping_ms = Some(now_ms);
        if self.last_evidence_ms.is_none() {
            self.last_evidence_ms = Some(now_ms);
        }
        seq
    }

    /// Processes a ping response. Returns `Some(DetectorEvent::Recover)`
    /// when a suspected/failed entity comes back.
    pub fn on_response(&mut self, seq: u64, now_ms: u64) -> Option<DetectorEvent> {
        let sent_at = self.outstanding.remove(&seq)?;
        let rtt = now_ms.saturating_sub(sent_at) as f64;
        let in_order = self
            .highest_answered_seq
            .map(|h| seq > h)
            .unwrap_or(true);
        if in_order {
            self.highest_answered_seq = Some(seq);
        }
        self.rtt.observe(rtt);
        self.last_evidence_ms = Some(now_ms);
        self.window.record(PingOutcome::Answered {
            rtt_ms: rtt,
            in_order,
        });
        if self.liveness != Liveness::Alive {
            self.liveness = Liveness::Alive;
            return Some(DetectorEvent::Recover);
        }
        None
    }

    /// Expires outstanding pings whose deadline passed, recording
    /// losses and escalating liveness. Returns at most one event.
    pub fn on_tick(&mut self, now_ms: u64) -> Option<DetectorEvent> {
        let timeout = self
            .rtt
            .timeout_ms(self.response_timeout_ms as f64)
            .max(self.response_timeout_ms as f64) as u64;
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, &sent)| now_ms.saturating_sub(sent) >= timeout)
            .map(|(&seq, _)| seq)
            .collect();
        if expired.is_empty() {
            return None;
        }
        for seq in expired {
            self.outstanding.remove(&seq);
            self.window.record(PingOutcome::Lost);
        }
        let losses = self.window.consecutive_losses();
        match self.liveness {
            Liveness::Alive if losses >= self.suspicion_threshold => {
                self.liveness = Liveness::Suspected;
                Some(DetectorEvent::Suspect)
            }
            Liveness::Suspected
                if losses >= self.suspicion_threshold + self.failure_threshold =>
            {
                self.liveness = Liveness::Failed;
                Some(DetectorEvent::Fail)
            }
            _ => None,
        }
    }

    /// Access to the ping window (loss/out-of-order rates for
    /// NETWORK_METRICS traces).
    pub fn window(&self) -> &PingWindow {
        &self.window
    }

    /// Smoothed RTT estimate.
    pub fn srtt_ms(&self) -> Option<f64> {
        self.rtt.srtt_ms()
    }

    /// Number of unanswered pings currently in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// When the entity last showed signs of life: the last answered
    /// ping, falling back to the first ping sent when nothing was ever
    /// answered. `None` before the first ping.
    pub fn last_evidence_ms(&self) -> Option<u64> {
        self.last_evidence_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TracingConfig {
        TracingConfig::for_tests() // suspicion 2, failure 2, timeout 50ms
    }

    fn detector() -> FailureDetector {
        FailureDetector::new(&config())
    }

    #[test]
    fn first_ping_is_immediately_due() {
        let d = detector();
        assert!(d.ping_due(0));
        assert_eq!(d.liveness(), Liveness::Alive);
    }

    #[test]
    fn interval_gates_subsequent_pings() {
        let mut d = detector();
        d.on_ping_sent(0);
        assert!(!d.ping_due(50)); // base interval 100ms
        assert!(d.ping_due(100));
    }

    #[test]
    fn responses_keep_entity_alive() {
        let mut d = detector();
        let mut now = 0;
        for _ in 0..20 {
            let seq = d.on_ping_sent(now);
            assert_eq!(d.on_response(seq, now + 5), None);
            now += 100;
            assert_eq!(d.on_tick(now), None);
        }
        assert_eq!(d.liveness(), Liveness::Alive);
        assert!(d.srtt_ms().unwrap() > 0.0);
    }

    #[test]
    fn consecutive_losses_suspect_then_fail() {
        let mut d = detector();
        let mut now = 0;
        let mut events = Vec::new();
        // 4 lost pings: suspicion after 2, failure after 4.
        for _ in 0..4 {
            d.on_ping_sent(now);
            now += 1000; // way past the timeout
            if let Some(e) = d.on_tick(now) {
                events.push(e);
            }
        }
        assert_eq!(events, vec![DetectorEvent::Suspect, DetectorEvent::Fail]);
        assert_eq!(d.liveness(), Liveness::Failed);
    }

    #[test]
    fn recovery_event_after_suspicion() {
        let mut d = detector();
        let mut now = 0;
        for _ in 0..2 {
            d.on_ping_sent(now);
            now += 1000;
            d.on_tick(now);
        }
        assert_eq!(d.liveness(), Liveness::Suspected);
        let seq = d.on_ping_sent(now);
        assert_eq!(d.on_response(seq, now + 5), Some(DetectorEvent::Recover));
        assert_eq!(d.liveness(), Liveness::Alive);
    }

    #[test]
    fn adaptive_interval_shrinks_on_losses() {
        let mut d = detector();
        let base = d.current_interval_ms();
        assert_eq!(base, 100);
        let mut now = 0;
        d.on_ping_sent(now);
        now += 1000;
        d.on_tick(now); // 1 loss
        assert_eq!(d.current_interval_ms(), 50);
        d.on_ping_sent(now);
        now += 1000;
        d.on_tick(now); // 2 losses
        assert_eq!(d.current_interval_ms(), 25);
        // Floors at the minimum.
        for _ in 0..10 {
            d.on_ping_sent(now);
            now += 1000;
            d.on_tick(now);
        }
        assert_eq!(d.current_interval_ms(), 10);
    }

    #[test]
    fn interval_restores_after_recovery() {
        let mut d = detector();
        let mut now = 0;
        d.on_ping_sent(now);
        now += 1000;
        d.on_tick(now);
        assert!(d.current_interval_ms() < 100);
        let seq = d.on_ping_sent(now);
        d.on_response(seq, now + 5);
        assert_eq!(d.current_interval_ms(), 100);
    }

    #[test]
    fn late_response_to_expired_ping_is_ignored() {
        let mut d = detector();
        let seq = d.on_ping_sent(0);
        d.on_tick(1000); // expired
        assert_eq!(d.on_response(seq, 1001), None); // unknown seq now
        assert_eq!(d.window().loss_rate(), 1.0);
    }

    #[test]
    fn out_of_order_responses_are_detected() {
        let mut d = detector();
        let s1 = d.on_ping_sent(0);
        let s2 = d.on_ping_sent(10);
        // s2 answered before s1.
        d.on_response(s2, 15);
        d.on_response(s1, 20);
        assert!(d.window().out_of_order_rate() > 0.0);
    }

    #[test]
    fn unknown_seq_is_ignored() {
        let mut d = detector();
        assert_eq!(d.on_response(999, 5), None);
        assert!(d.window().is_empty());
    }

    #[test]
    fn evidence_tracks_last_answered_ping() {
        let mut d = detector();
        assert_eq!(d.last_evidence_ms(), None);
        let s1 = d.on_ping_sent(10);
        assert_eq!(d.last_evidence_ms(), Some(10)); // first ping is the fallback
        d.on_response(s1, 25);
        assert_eq!(d.last_evidence_ms(), Some(25));
        d.on_ping_sent(100);
        assert_eq!(d.last_evidence_ms(), Some(25)); // unanswered pings are not evidence
    }

    #[test]
    fn rtt_spikes_extend_the_timeout() {
        let mut d = detector();
        let mut now = 0;
        // Train the estimator on slow responses (rtt 40ms).
        for _ in 0..10 {
            let seq = d.on_ping_sent(now);
            d.on_response(seq, now + 40);
            now += 100;
        }
        // With srtt≈40 and rttvar settling, timeout > base 50ms floor.
        let seq = d.on_ping_sent(now);
        let _ = seq;
        assert!(d.on_tick(now + 51).is_none() || d.window().consecutive_losses() == 0);
    }
}
