//! # nb-tracing — secure, authorized entity availability tracking
//!
//! The paper's primary contribution (§3–§5), assembled from the
//! substrate crates:
//!
//! * [`entity::TracedEntity`] — the client-side runtime of a traced
//!   entity: trace-topic creation at a TDN, signed registration with a
//!   broker, ping responses, state/load reports, delegation-token
//!   minting (§4.3), secret-key exchange for confidential traces
//!   (§5.1), and the symmetric-key signing optimization (§6.3);
//! * [`engine::TracingEngine`] — the broker-side engine: failure
//!   detection with adaptive ping intervals, trace publication on the
//!   per-category derivative topics of Table 2, GAUGE_INTEREST gating
//!   (§3.5), token attachment, and trace encryption;
//! * [`tracker::Tracker`] — the consumer runtime: authorized
//!   discovery, selective subscription, token/signature verification,
//!   trace decryption, and an availability view;
//! * [`failure::FailureDetector`] — the deterministic ping/suspicion/
//!   failure state machine;
//! * [`harness::Deployment`] — one-call test/benchmark deployments
//!   (CA + TDN cluster + broker topology + engines).

pub mod channels;
pub mod config;
pub mod engine;
pub mod entity;
pub mod error;
pub mod failure;
pub mod harness;
pub mod interest;
pub mod persist;
pub mod tracker;
pub mod view;

pub use config::{SigningMode, TracingConfig};
pub use engine::TracingEngine;
pub use entity::{EntityOptions, TracedEntity};
pub use error::TracingError;
pub use failure::{FailureDetector, Liveness};
pub use tracker::{Tracker, TrackerOptions};
pub use view::{AvailabilityView, EntityStatus};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TracingError>;
