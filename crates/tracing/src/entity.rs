//! The traced-entity runtime (paper §3.1–§3.2, §4.3, §5.1, §6.3).
//!
//! "In our scheme an entity will be traced only if it specifically
//! issues a request for this." The sequence implemented here:
//!
//! 1. create the trace topic at a TDN (credentials, descriptor,
//!    discovery restrictions, lifetime);
//! 2. register with a broker over the registration constrained topic,
//!    signing the request to prove credential possession;
//! 3. receive the sealed session grant, subscribe to the
//!    broker→entity session channel;
//! 4. mint a delegation token over a **freshly generated key pair**
//!    and hand it to the broker (§4.3);
//! 5. optionally exchange a secret trace key (confidential traces,
//!    §5.1) and/or a symmetric session key (§6.3 signing
//!    optimization);
//! 6. answer pings and report state transitions and load.

use crate::channels;
use crate::config::{SigningMode, TracingConfig};
use crate::error::TracingError;
use crate::Result;
use nb_broker::BrokerClient;
use nb_crypto::cert::Credential;
use nb_crypto::hybrid::SealedEnvelope;
use nb_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use nb_crypto::{SessionKey, Uuid};
use nb_tdn::TdnCluster;
use nb_telemetry::{HeadSampler, TraceContext};
use nb_transport::clock::SharedClock;
use nb_wire::codec::{Decode, Encode};
use nb_wire::payload::{DiscoveryRestrictions, SessionGrant, TraceKeyMaterial};
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::trace::{topics, EntityState, LoadInformation};
use nb_wire::{Message, Payload, Topic};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Options controlling how an entity requests tracing.
pub struct EntityOptions {
    /// The entity's identifier.
    pub entity_id: String,
    /// The entity's CA-issued credential.
    pub credential: Credential,
    /// The hosting broker's public key (from secure broker
    /// discovery) — keys are sealed to it.
    pub broker_key: RsaPublicKey,
    /// Who may discover the trace topic.
    pub restrictions: DiscoveryRestrictions,
    /// Trace-topic lifetime in ms (0 = unbounded).
    pub topic_lifetime_ms: u64,
    /// RSA per-message signatures or the §6.3 HMAC optimization.
    pub signing_mode: SigningMode,
    /// Encrypt traces with a secret trace key (§5.1).
    pub secured: bool,
    /// Scheme configuration.
    pub config: TracingConfig,
    /// RNG seed.
    pub seed: u64,
}

struct EntityInner {
    id: String,
    credential: Credential,
    client: BrokerClient,
    clock: SharedClock,
    config: TracingConfig,
    trace_topic: Uuid,
    session_id: Uuid,
    session_channel: Topic,
    broker_key: RsaPublicKey,
    state: Mutex<EntityState>,
    secured: bool,
    mac_key: Mutex<Option<Vec<u8>>>,
    delegate: Mutex<RsaKeyPair>,
    rng: Mutex<StdRng>,
    /// Head-sampling decision for entity-originated messages.
    sampler: HeadSampler,
    stop: AtomicBool,
    pings_answered: AtomicU64,
    /// Signalled after every answered ping (see
    /// [`TracedEntity::wait_for_pings`]).
    ping_notify: Mutex<()>,
    ping_cv: Condvar,
}

impl EntityInner {
    /// Mints a root trace context for an outgoing message, `None` when
    /// telemetry is off. Trace contexts ride outside the signed/MACed
    /// region, so attaching one never perturbs authentication.
    fn mint_trace(&self) -> Option<TraceContext> {
        if !self.config.telemetry.enabled {
            return None;
        }
        let mut ctx = TraceContext::root(nb_telemetry::fresh_span_id(), false);
        ctx.sampled = self.sampler.decide(ctx.trace_id);
        Some(ctx)
    }
}

/// A running traced entity.
pub struct TracedEntity {
    inner: Arc<EntityInner>,
}

impl TracedEntity {
    /// Performs the full §3.1–§3.2 start-up sequence over an attached
    /// broker client, then spawns the ping-answering pump.
    pub fn start(
        client: BrokerClient,
        tdns: &TdnCluster,
        clock: SharedClock,
        opts: EntityOptions,
    ) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let timeout = Duration::from_secs(10);

        // 1. Trace-topic creation at the TDN.
        let advertisement = tdns.create_topic(
            &opts.credential.certificate,
            &topics::descriptor_for_entity(&opts.entity_id),
            opts.restrictions.clone(),
            opts.topic_lifetime_ms,
        )?;
        let trace_topic = advertisement.topic_id;

        // 2. Subscribe to the registration reply channel, then send
        //    the signed registration. The request is resent on timeout
        //    (lossy links); the engine grants idempotently.
        client.subscribe(channels::registration_reply(&opts.entity_id), timeout)?;
        let attempts = 6u32;
        let per_attempt = timeout / attempts;
        let mut session: Option<Uuid> = None;
        'register: for _ in 0..attempts {
            let mut reg = client.make_message(
                topics::registration(),
                Payload::TraceRegistration {
                    entity_id: opts.entity_id.clone(),
                    credentials: opts.credential.certificate.clone(),
                    advertisement: advertisement.clone(),
                },
            );
            reg.sign(&opts.credential)?;
            let request_id = reg.id;
            client.send_message(&reg)?;

            // 3. Await the sealed grant for this attempt.
            let deadline = std::time::Instant::now() + per_attempt;
            loop {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    continue 'register; // resend
                }
                let Ok(msg) = client.next_message(remaining) else {
                    continue 'register;
                };
                if msg.correlation_id != request_id {
                    continue;
                }
                match msg.payload {
                    Payload::RegistrationAccepted { sealed } => {
                        let bytes = sealed.open(&opts.credential.private_key)?;
                        let grant = SessionGrant::from_bytes(&bytes)?;
                        if grant.request_id != request_id {
                            return Err(TracingError::AuthenticationFailed(
                                "grant correlates to a different request",
                            ));
                        }
                        session = Some(grant.session_id);
                        break 'register;
                    }
                    Payload::RegistrationRejected { reason } => {
                        return Err(TracingError::RegistrationRejected(reason));
                    }
                    _ => continue,
                }
            }
        }
        let session_id = session.ok_or(TracingError::Timeout("registration response"))?;

        // 4. Subscribe to the broker→entity session channel (§3.2).
        client.subscribe(
            topics::broker_to_entity(&opts.entity_id, &trace_topic, &session_id),
            timeout,
        )?;

        let session_channel = topics::entity_to_broker(&trace_topic, &session_id);
        let delegate = RsaKeyPair::generate(opts.config.rsa_bits, &mut rng)?;
        let sampler = HeadSampler::from_config(&opts.config.telemetry);

        let inner = Arc::new(EntityInner {
            id: opts.entity_id,
            credential: opts.credential,
            client,
            clock,
            config: opts.config,
            trace_topic,
            session_id,
            session_channel,
            broker_key: opts.broker_key,
            state: Mutex::new(EntityState::Initializing),
            secured: opts.secured,
            mac_key: Mutex::new(None),
            delegate: Mutex::new(delegate),
            rng: Mutex::new(rng),
            sampler,
            stop: AtomicBool::new(false),
            pings_answered: AtomicU64::new(0),
            ping_notify: Mutex::new(()),
            ping_cv: Condvar::new(),
        });
        let entity = TracedEntity { inner };

        // 5. Delegate publication rights to the broker (§4.3).
        entity.send_delegation_token()?;

        // 6. Optional key exchanges.
        if opts.signing_mode == SigningMode::SymmetricKey {
            entity.enable_symmetric_mode()?;
        }
        if opts.secured {
            entity.send_trace_key()?;
        }
        if entity.inner.config.session_keys {
            entity.announce_session_key()?;
        }

        // 7. Announce readiness and start answering pings.
        entity.set_state(EntityState::Ready)?;
        entity.spawn_pump();
        Ok(entity)
    }

    /// The TDN-issued trace topic.
    pub fn trace_topic(&self) -> Uuid {
        self.inner.trace_topic
    }

    /// The broker-issued session id.
    pub fn session_id(&self) -> Uuid {
        self.inner.session_id
    }

    /// The entity identifier.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Pings answered so far.
    pub fn pings_answered(&self) -> u64 {
        self.inner.pings_answered.load(Ordering::Relaxed)
    }

    /// Blocks until this entity has answered at least `n` pings (true)
    /// or `timeout` elapses (false). Event-driven: the pump signals a
    /// condition variable after each answered ping, so the caller
    /// wakes on the ping itself rather than on a sleep-poll interval.
    pub fn wait_for_pings(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.inner.ping_notify.lock();
        loop {
            if self.inner.pings_answered.load(Ordering::SeqCst) >= n {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .ping_cv
                .wait_for(&mut guard, deadline.duration_since(now));
        }
    }

    /// The entity's current lifecycle state.
    pub fn state(&self) -> EntityState {
        *self.inner.state.lock()
    }

    /// Authenticates and sends a message on the entity→broker session
    /// channel (§4.2 / §6.3).
    fn send_authed(&self, payload: Payload) -> Result<()> {
        let mut msg = self
            .inner
            .client
            .make_message(self.inner.session_channel.clone(), payload);
        if let Some(ctx) = self.inner.mint_trace() {
            msg = msg.with_trace(ctx);
        }
        authenticate_message(&self.inner, &mut msg)?;
        self.inner.client.send_message(&msg)?;
        Ok(())
    }

    /// Mints and delivers a fresh delegation token (§4.3). Also used
    /// to refresh "once a token is closer to expiration".
    pub fn send_delegation_token(&self) -> Result<()> {
        let now = self.inner.clock.now_ms();
        let token = {
            let delegate = self.inner.delegate.lock();
            AuthorizationToken::issue(
                &self.inner.credential,
                self.inner.trace_topic,
                delegate.public.clone(),
                Rights::Publish,
                now.saturating_sub(self.inner.config.token_skew_ms),
                now + self.inner.config.token_lifetime_ms,
            )?
        };
        self.send_authed(Payload::DelegationToken { token })
    }

    /// Rotates the delegate key pair and issues a new token.
    pub fn refresh_token(&self) -> Result<()> {
        let fresh = {
            let mut rng = self.inner.rng.lock();
            RsaKeyPair::generate(self.inner.config.rsa_bits, &mut *rng)?
        };
        *self.inner.delegate.lock() = fresh;
        self.send_delegation_token()
    }

    /// Switches entity→broker authentication to HMAC under a sealed
    /// shared key (§6.3).
    pub fn enable_symmetric_mode(&self) -> Result<()> {
        let mut key = vec![0u8; 32];
        let sealed = {
            let mut rng = self.inner.rng.lock();
            (*rng).fill_bytes(&mut key);
            SealedEnvelope::seal(
                &self.inner.broker_key,
                &key,
                nb_crypto::aes::KeySize::Aes192,
                &mut *rng,
            )?
        };
        // The transition message itself is RSA-signed.
        let mut msg = self
            .inner
            .client
            .make_message(
                self.inner.session_channel.clone(),
                Payload::SymmetricKeySetup { sealed },
            );
        msg.sign(&self.inner.credential)?;
        self.inner.client.send_message(&msg)?;
        *self.inner.mac_key.lock() = Some(key);
        Ok(())
    }

    /// Mints a fresh trace session key, seals it to the hosting
    /// broker and announces it — the asymmetric half of the
    /// amortized-RSA handshake. The engine installs the key and tags
    /// every subsequent trace publication with an HMAC under it, so
    /// the per-trace hot path never touches RSA again until rotation.
    ///
    /// The announcement itself is RSA-signed (like the §6.3
    /// symmetric-key setup): the broker must know the key came from
    /// the credentialed entity, not a bystander.
    pub fn announce_session_key(&self) -> Result<()> {
        let now = self.inner.clock.now_ms();
        let sealed = {
            let mut rng = self.inner.rng.lock();
            let key = SessionKey::mint(
                self.inner.trace_topic,
                now,
                self.inner.config.session_lifetime_ms,
                self.inner.config.session_max_messages,
                &mut *rng,
            );
            SealedEnvelope::seal(
                &self.inner.broker_key,
                &key.to_bytes(),
                nb_crypto::aes::KeySize::Aes192,
                &mut *rng,
            )?
        };
        let mut msg = self.inner.client.make_message(
            self.inner.session_channel.clone(),
            Payload::SessionKeyAnnounce { sealed },
        );
        msg.sign(&self.inner.credential)?;
        self.inner.client.send_message(&msg)?;
        Ok(())
    }

    /// Generates the secret trace key and routes it, sealed, to the
    /// broker (§5.1). Traces are encrypted from then on.
    pub fn send_trace_key(&self) -> Result<()> {
        let mut key = vec![0u8; 24]; // 192-bit AES, the paper's choice
        let sealed = {
            let mut rng = self.inner.rng.lock();
            (*rng).fill_bytes(&mut key);
            let material =
                TraceKeyMaterial::aes192(key.clone(), self.inner.config.trace_cipher);
            SealedEnvelope::seal(
                &self.inner.broker_key,
                &material.to_bytes(),
                nb_crypto::aes::KeySize::Aes192,
                &mut *rng,
            )?
        };
        self.send_authed(Payload::TraceKeyDelivery { sealed })
    }

    /// Reports a lifecycle state transition (§3.3).
    pub fn set_state(&self, to: EntityState) -> Result<()> {
        let from = {
            let mut state = self.inner.state.lock();
            let prev = *state;
            *state = to;
            Some(prev)
        };
        self.send_authed(Payload::StateReport { from, to })
    }

    /// Reports host load (§3.3 "changes in both memory and CPU
    /// utilization").
    pub fn report_load(&self, load: LoadInformation) -> Result<()> {
        self.send_authed(Payload::LoadReport { load })
    }

    /// Disables tracing (REVERTING_TO_SILENT_MODE) and stops the pump.
    pub fn go_silent(&self) -> Result<()> {
        self.send_authed(Payload::SilentModeRequest)?;
        self.stop();
        Ok(())
    }

    /// Stops answering pings (simulates a crash for failure-detection
    /// tests).
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    fn spawn_pump(&self) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("entity-{}-pump", inner.id))
            .spawn(move || {
                let mut last_setup = std::time::Instant::now();
                loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Loss recovery: until the first ping proves the broker
                // holds our delegation token (it only pings joined
                // sessions), periodically re-send the setup bundle.
                // Every setup message is idempotent at the engine.
                //
                // This must run *before* blocking on the receive: an
                // un-joined session gets no pings, so when the setup
                // bundle is lost every receive times out and a retry
                // gated behind a successful receive would never fire.
                if inner.pings_answered.load(Ordering::Relaxed) == 0
                    && last_setup.elapsed() > Duration::from_millis(1500)
                {
                    last_setup = std::time::Instant::now();
                    let entity = TracedEntity {
                        inner: Arc::clone(&inner),
                    };
                    let _ = entity.send_delegation_token();
                    if inner.mac_key.lock().is_some() {
                        let _ = entity.enable_symmetric_mode();
                    }
                    if inner.secured {
                        let _ = entity.send_trace_key();
                    }
                    // A lost announcement leaves the engine on the
                    // token path; each retry mints a fresh key and the
                    // engine adopts the newest.
                    if inner.config.session_keys {
                        let _ = entity.announce_session_key();
                    }
                    let state = *inner.state.lock();
                    let _ = entity.send_authed(Payload::StateReport {
                        from: None,
                        to: state,
                    });
                    // `entity` is just another Arc handle; dropping it
                    // here is safe and leaves the pump running.
                }
                let msg = match inner.client.next_message(Duration::from_millis(50)) {
                    Ok(m) => m,
                    Err(nb_broker::BrokerError::Timeout) => continue,
                    Err(nb_broker::BrokerError::Transport(
                        nb_transport::TransportError::Timeout,
                    )) => continue,
                    Err(_) => return,
                };
                if let Payload::Ping { seq, sent_at_ms } = msg.payload {
                    // §3.3: the response echoes both the number and the
                    // timestamp of the ping.
                    let state = *inner.state.lock();
                    let mut reply = inner.client.make_message(
                        inner.session_channel.clone(),
                        Payload::PingResponse {
                            seq,
                            echo_sent_at_ms: sent_at_ms,
                            state,
                        },
                    );
                    // Return-path propagation: the response travels on
                    // the ping's own trace so the engine's Consume span
                    // closes the loop in one causal chain.
                    reply.trace = msg.trace;
                    if authenticate_message(&inner, &mut reply).is_ok()
                        && inner.client.send_message(&reply).is_ok()
                    {
                        inner.pings_answered.fetch_add(1, Ordering::SeqCst);
                        // Holding the notify lock across the signal
                        // closes the missed-wakeup window against
                        // wait_for_pings' check-then-wait.
                        let _guard = inner.ping_notify.lock();
                        inner.ping_cv.notify_all();
                    }
                }
            }})
            .expect("spawn entity pump");
    }
}

fn authenticate_message(inner: &EntityInner, msg: &mut Message) -> Result<()> {
    let mac_key = inner.mac_key.lock();
    match mac_key.as_ref() {
        Some(key) => {
            msg.mac_with(key);
            Ok(())
        }
        None => {
            msg.sign(&inner.credential)?;
            Ok(())
        }
    }
}

impl std::fmt::Debug for TracedEntity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TracedEntity({}, topic={})",
            self.inner.id, self.inner.trace_topic
        )
    }
}
