//! # nb-baseline — comparison schemes
//!
//! Two baselines the paper positions itself against:
//!
//! * [`naive::NaiveHeartbeatSystem`] — §1's "simplest scheme": every
//!   entity broadcasts a heartbeat to every other entity each period,
//!   producing N×(N−1) messages per round. Its message complexity is
//!   what motivates the interest-gated, broker-mediated design.
//! * [`gossip::GossipFailureDetector`] — the gossip-style failure
//!   detection of van Renesse et al. (related work §7): members
//!   exchange heartbeat tables with random peers; a member whose
//!   heartbeat hasn't advanced within the timeout is suspected.
//!
//! Both are deliberately simulation-grade (no sockets): the benches
//! compare *message complexity and detection behaviour*, not wire
//! throughput.

pub mod gossip;
pub mod naive;

pub use gossip::{GossipConfig, GossipFailureDetector};
pub use naive::{NaiveConfig, NaiveHeartbeatSystem};
