//! Gossip-style failure detection (van Renesse, Minsky & Hayden —
//! related work §7 of the paper).
//!
//! Each member keeps a heartbeat counter per peer. Every round a
//! member increments its own counter and sends its full table to a few
//! random peers, which merge it (taking per-entry maxima). A peer
//! whose counter has not advanced within `fail_after_rounds` is
//! suspected. Gossip "tends to scale well and has no single point of
//! failure" but must cope with uneven propagation — visible in this
//! simulation as detection-time variance.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Gossip parameters.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Peers gossiped to per round (fanout).
    pub fanout: usize,
    /// Rounds without counter advance before suspicion.
    pub fail_after_rounds: u64,
    /// RNG seed for peer selection.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 2,
            fail_after_rounds: 6,
            seed: 0x90551b,
        }
    }
}

#[derive(Debug, Clone)]
struct MemberView {
    /// Highest heartbeat counter seen per member.
    heartbeats: Vec<u64>,
    /// Round at which each counter last advanced.
    last_advance: Vec<u64>,
}

/// A round-driven gossip failure-detection simulation.
#[derive(Debug)]
pub struct GossipFailureDetector {
    config: GossipConfig,
    alive: Vec<bool>,
    views: Vec<MemberView>,
    round: u64,
    messages_sent: u64,
    rng: StdRng,
}

impl GossipFailureDetector {
    /// Creates `n` live members.
    pub fn new(n: usize, config: GossipConfig) -> Self {
        let views = (0..n)
            .map(|_| MemberView {
                heartbeats: vec![0; n],
                last_advance: vec![0; n],
            })
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        GossipFailureDetector {
            config,
            alive: vec![true; n],
            views,
            round: 0,
            messages_sent: 0,
            rng,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the system has no members.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Completed gossip rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Gossip messages exchanged so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Kills a member.
    pub fn kill(&mut self, idx: usize) {
        self.alive[idx] = false;
    }

    /// Runs one gossip round: live members bump their own counter and
    /// push their table to `fanout` random peers.
    pub fn run_round(&mut self) {
        self.round += 1;
        let n = self.len();
        // 1. Live members increment their own heartbeat.
        for i in 0..n {
            if self.alive[i] {
                self.views[i].heartbeats[i] += 1;
                self.views[i].last_advance[i] = self.round;
            }
        }
        // 2. Each live member gossips to random peers.
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            for _ in 0..self.config.fanout {
                let peer = self.rng.random_range(0..n);
                if peer == i {
                    continue;
                }
                self.messages_sent += 1;
                // Merge i's table into peer's (max per entry).
                let src = self.views[i].heartbeats.clone();
                let dst = &mut self.views[peer];
                for (m, &hb) in src.iter().enumerate() {
                    if hb > dst.heartbeats[m] {
                        dst.heartbeats[m] = hb;
                        dst.last_advance[m] = self.round;
                    }
                }
            }
        }
    }

    /// Whether `observer` suspects `target` at the current round.
    pub fn suspects(&self, observer: usize, target: usize) -> bool {
        let last = self.views[observer].last_advance[target];
        self.round.saturating_sub(last) >= self.config.fail_after_rounds
    }

    /// Fraction of live members that suspect `target` (gossip needs a
    /// majority for a consensus verdict, per GEMS).
    pub fn suspicion_fraction(&self, target: usize) -> f64 {
        let live: Vec<usize> = (0..self.len())
            .filter(|&i| self.alive[i] && i != target)
            .collect();
        if live.is_empty() {
            return 0.0;
        }
        let suspecting = live.iter().filter(|&&i| self.suspects(i, target)).count();
        suspecting as f64 / live.len() as f64
    }

    /// Runs rounds until a majority of live members suspect `target`,
    /// returning the number of rounds taken (capped at `max_rounds`).
    pub fn rounds_until_majority_suspicion(&mut self, target: usize, max_rounds: u64) -> u64 {
        let start = self.round;
        while self.round - start < max_rounds {
            self.run_round();
            if self.suspicion_fraction(target) > 0.5 {
                return self.round - start;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_members_are_not_suspected() {
        let mut g = GossipFailureDetector::new(10, GossipConfig::default());
        for _ in 0..30 {
            g.run_round();
        }
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    assert!(!g.suspects(i, j), "{i} suspects {j}");
                }
            }
        }
    }

    #[test]
    fn dead_member_reaches_majority_suspicion() {
        let mut g = GossipFailureDetector::new(10, GossipConfig::default());
        for _ in 0..10 {
            g.run_round();
        }
        g.kill(3);
        let rounds = g.rounds_until_majority_suspicion(3, 100);
        assert!(rounds < 100, "never suspected");
        // Detection needs at least fail_after_rounds of silence.
        assert!(rounds >= GossipConfig::default().fail_after_rounds);
        assert!(g.suspicion_fraction(3) > 0.5);
    }

    #[test]
    fn message_complexity_is_linear_in_members() {
        // Gossip sends n*fanout messages per round — linear, unlike
        // the naive scheme's quadratic blow-up.
        let mut g = GossipFailureDetector::new(50, GossipConfig::default());
        g.run_round();
        assert!(g.messages_sent() <= 50 * 2);
    }

    #[test]
    fn gossip_spreads_heartbeats_transitively() {
        let mut g = GossipFailureDetector::new(20, GossipConfig::default());
        for _ in 0..20 {
            g.run_round();
        }
        // After many rounds, everyone has heard (transitively) from
        // everyone: all counters are positive.
        for i in 0..20 {
            for j in 0..20 {
                assert!(g.views[i].heartbeats[j] > 0, "{i} never heard of {j}");
            }
        }
    }

    #[test]
    fn detection_time_varies_with_fanout() {
        let slow_cfg = GossipConfig {
            fanout: 1,
            ..GossipConfig::default()
        };
        let fast_cfg = GossipConfig {
            fanout: 5,
            ..GossipConfig::default()
        };
        let mut slow = GossipFailureDetector::new(30, slow_cfg);
        let mut fast = GossipFailureDetector::new(30, fast_cfg);
        for g in [&mut slow, &mut fast] {
            for _ in 0..10 {
                g.run_round();
            }
            g.kill(7);
        }
        let slow_rounds = slow.rounds_until_majority_suspicion(7, 200);
        let fast_rounds = fast.rounds_until_majority_suspicion(7, 200);
        assert!(
            fast_rounds <= slow_rounds,
            "fanout 5 ({fast_rounds}) should not detect slower than fanout 1 ({slow_rounds})"
        );
    }
}
