//! The naive all-to-all heartbeat scheme (paper §1).
//!
//! "If there are N entities within the system, with each of them
//! issuing one message at regular intervals, every entity within the
//! system receives (N−1) messages. If every entity issues one such
//! message per second, there would be N×(N−1) messages within the
//! system every second."
//!
//! This simulator executes the scheme round by round so benches can
//! count messages and measure time-to-detection against the tracing
//! scheme.

use std::collections::HashMap;

/// Naive-scheme parameters.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Heartbeat period in ms.
    pub period_ms: u64,
    /// An entity is deemed failed after this many missed periods.
    pub miss_threshold: u32,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            period_ms: 1000,
            miss_threshold: 3,
        }
    }
}

#[derive(Debug)]
struct Member {
    alive: bool,
    /// Last heartbeat time observed by each peer, keyed by observer.
    last_seen_by: HashMap<usize, u64>,
}

/// A round-driven all-to-all heartbeat simulation.
#[derive(Debug)]
pub struct NaiveHeartbeatSystem {
    config: NaiveConfig,
    members: Vec<Member>,
    now_ms: u64,
    messages_sent: u64,
}

impl NaiveHeartbeatSystem {
    /// Creates a system of `n` live members at time zero.
    pub fn new(n: usize, config: NaiveConfig) -> Self {
        let members = (0..n)
            .map(|i| Member {
                alive: true,
                last_seen_by: (0..n).filter(|&j| j != i).map(|j| (j, 0)).collect(),
            })
            .collect();
        NaiveHeartbeatSystem {
            config,
            members,
            now_ms: 0,
            messages_sent: 0,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the system has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Total heartbeat messages exchanged so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages generated per round with the current live population:
    /// every live member sends to every other member.
    pub fn messages_per_round(&self) -> u64 {
        let live = self.members.iter().filter(|m| m.alive).count() as u64;
        let n = self.members.len() as u64;
        live * n.saturating_sub(1)
    }

    /// Kills a member (it stops heartbeating).
    pub fn kill(&mut self, idx: usize) {
        self.members[idx].alive = false;
    }

    /// Revives a member.
    pub fn revive(&mut self, idx: usize) {
        self.members[idx].alive = true;
    }

    /// Advances one heartbeat period: live members broadcast, every
    /// member updates its view.
    #[allow(clippy::needless_range_loop)] // sender/receiver index pairs
    pub fn run_round(&mut self) {
        self.now_ms += self.config.period_ms;
        let now = self.now_ms;
        let n = self.members.len();
        let alive: Vec<bool> = self.members.iter().map(|m| m.alive).collect();
        for sender in 0..n {
            if !alive[sender] {
                continue;
            }
            for receiver in 0..n {
                if receiver == sender {
                    continue;
                }
                self.messages_sent += 1;
                self.members[sender].last_seen_by.insert(receiver, now);
            }
        }
    }

    /// Whether `observer` currently considers `target` failed.
    pub fn considers_failed(&self, observer: usize, target: usize) -> bool {
        let last = self.members[target]
            .last_seen_by
            .get(&observer)
            .copied()
            .unwrap_or(0);
        let silence = self.now_ms.saturating_sub(last);
        silence > self.config.miss_threshold as u64 * self.config.period_ms
    }

    /// Rounds until `observer` notices `target`'s failure, given the
    /// miss threshold (used for time-to-detection comparisons).
    pub fn rounds_to_detection(&self) -> u32 {
        self.config.miss_threshold + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_complexity_is_quadratic() {
        // The paper's N×(N−1) claim, verbatim.
        for n in [2usize, 5, 10, 30] {
            let mut sys = NaiveHeartbeatSystem::new(n, NaiveConfig::default());
            sys.run_round();
            assert_eq!(sys.messages_sent(), (n * (n - 1)) as u64, "n={n}");
            assert_eq!(sys.messages_per_round(), (n * (n - 1)) as u64);
        }
    }

    #[test]
    fn live_members_are_not_suspected() {
        let mut sys = NaiveHeartbeatSystem::new(4, NaiveConfig::default());
        for _ in 0..10 {
            sys.run_round();
        }
        for observer in 0..4 {
            for target in 0..4 {
                if observer != target {
                    assert!(!sys.considers_failed(observer, target));
                }
            }
        }
    }

    #[test]
    fn dead_member_is_detected_after_threshold() {
        let config = NaiveConfig {
            period_ms: 1000,
            miss_threshold: 3,
        };
        let mut sys = NaiveHeartbeatSystem::new(3, config);
        sys.run_round();
        sys.kill(2);
        // Not yet failed within the threshold.
        for _ in 0..3 {
            sys.run_round();
            assert!(!sys.considers_failed(0, 2));
        }
        sys.run_round(); // 4th silent period exceeds 3×period
        assert!(sys.considers_failed(0, 2));
        assert!(sys.considers_failed(1, 2));
        // Live members still look fine.
        assert!(!sys.considers_failed(0, 1));
    }

    #[test]
    fn dead_members_stop_sending() {
        let mut sys = NaiveHeartbeatSystem::new(10, NaiveConfig::default());
        sys.run_round();
        let full_round = sys.messages_sent();
        sys.kill(0);
        sys.run_round();
        let partial = sys.messages_sent() - full_round;
        assert_eq!(partial, 9 * 9); // 9 live senders × 9 receivers
    }

    #[test]
    fn revival_resumes_heartbeats() {
        let config = NaiveConfig {
            period_ms: 1000,
            miss_threshold: 1,
        };
        let mut sys = NaiveHeartbeatSystem::new(2, config);
        sys.kill(1);
        sys.run_round();
        sys.run_round();
        assert!(sys.considers_failed(0, 1));
        sys.revive(1);
        sys.run_round();
        assert!(!sys.considers_failed(0, 1));
    }
}
