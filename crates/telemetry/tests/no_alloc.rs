//! Proves the hot-path claims: neither the head-sampling decision nor
//! `FlightRecorder::record` allocates. Uses a counting global
//! allocator, so everything is measured inside one test function to
//! keep the counter unpolluted by parallel tests.

use nb_telemetry::{now_ns, FlightRecorder, HeadSampler, SpanEvent, Stage, TraceContext};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn hot_path_never_allocates() {
    // Warm everything that is allowed to allocate once: the recorder's
    // ring, the monotonic epoch, and id generators.
    let recorder = FlightRecorder::new("hot", 1024);
    let sampler = HeadSampler::new(500_000);
    let ctx = TraceContext::root(0, true);
    let _ = now_ns();
    recorder.record(SpanEvent::new(&ctx, Stage::Route, now_ns(), now_ns()));

    // 1. The unsampled fast path: the guard a broker evaluates per
    //    message before doing any tracing work at all.
    let unsampled = TraceContext::root(0, false);
    let before = allocations();
    let mut kept = 0u32;
    for _ in 0..10_000 {
        if unsampled.sampled && sampler.decide(unsampled.trace_id) {
            kept += 1;
        }
    }
    assert_eq!(kept, 0);
    assert_eq!(
        allocations() - before,
        0,
        "unsampled guard path allocated"
    );

    // 2. The sampled record path: building and recording a span.
    let before = allocations();
    for _ in 0..10_000 {
        let t0 = now_ns();
        recorder.record(SpanEvent::new(&ctx, Stage::AuthCheck, t0, now_ns()));
    }
    assert_eq!(allocations() - before, 0, "record path allocated");
    assert_eq!(recorder.recorded(), 10_001);
}
