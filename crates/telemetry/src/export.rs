//! Exporters: render captured spans as JSON-lines or Chrome
//! `trace_event` JSON. Both are hand-rolled (no serde) and meant for
//! offline analysis, so they run off the hot path and may allocate.

use crate::recorder::{FlightRecorder, SpanEvent};

/// Spans captured from one node's flight recorder, tagged with the
/// node's name so multi-node exports stay attributable.
#[derive(Debug, Clone)]
pub struct NodeSpans {
    /// Node the spans were recorded on (broker/engine/tracker/TDN id).
    pub node: String,
    /// The captured spans, sorted by start time.
    pub spans: Vec<SpanEvent>,
}

impl NodeSpans {
    /// Snapshots `recorder` into an owned, exportable capture.
    pub fn capture(recorder: &FlightRecorder) -> Self {
        Self {
            node: recorder.node().to_string(),
            spans: recorder.snapshot(),
        }
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders captures as JSON-lines: one self-contained JSON object per
/// span, trace ids as 32-digit hex. Grep/jq-friendly.
pub fn json_lines(captures: &[NodeSpans]) -> String {
    let mut out = String::new();
    for cap in captures {
        let node = esc(&cap.node);
        for e in &cap.spans {
            out.push_str(&format!(
                "{{\"node\":\"{}\",\"trace\":\"{:032x}\",\"span\":{},\"parent\":{},\
                 \"hop\":{},\"stage\":\"{}\",\"cat\":\"{}\",\"start_ns\":{},\
                 \"end_ns\":{},\"dur_ns\":{}}}\n",
                node,
                e.trace_id,
                e.span_id,
                e.parent_span,
                e.hop,
                e.stage.name(),
                e.stage.category(),
                e.start_ns,
                e.end_ns,
                e.dur_ns(),
            ));
        }
    }
    out
}

/// Renders captures in Chrome `trace_event` JSON (load it in
/// `chrome://tracing` or Perfetto). Each node becomes a process
/// (`ph:"M"` `process_name` metadata), each span a complete `ph:"X"`
/// duration event; timestamps are microseconds on the shared monotonic
/// timebase, thread lane = hop count.
pub fn chrome_trace(captures: &[NodeSpans]) -> String {
    let mut events = Vec::new();
    for (pid, cap) in captures.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            pid,
            esc(&cap.node)
        ));
        for e in &cap.spans {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"trace\":\"{:032x}\",\
                 \"span\":{},\"parent\":{},\"hop\":{}}}}}",
                pid,
                e.hop,
                e.stage.name(),
                e.stage.category(),
                e.start_ns as f64 / 1_000.0,
                e.dur_ns() as f64 / 1_000.0,
                e.trace_id,
                e.span_id,
                e.parent_span,
                e.hop,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceContext;
    use crate::recorder::Stage;

    fn sample_capture() -> NodeSpans {
        let rec = FlightRecorder::new("broker-0", 16);
        let ctx = TraceContext::root(0, true);
        rec.record(SpanEvent::new(&ctx, Stage::AuthCheck, 1_000, 2_000));
        rec.record(SpanEvent::new(&ctx, Stage::Route, 2_000, 2_500));
        NodeSpans::capture(&rec)
    }

    #[test]
    fn json_lines_one_object_per_span() {
        let cap = sample_capture();
        let out = json_lines(&[cap]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"node\":\"broker-0\""));
        }
        assert!(lines[0].contains("\"stage\":\"auth\""));
        assert!(lines[0].contains("\"dur_ns\":1000"));
        assert!(lines[1].contains("\"stage\":\"route\""));
    }

    #[test]
    fn chrome_trace_has_metadata_and_duration_events() {
        let cap = sample_capture();
        let out = chrome_trace(&[cap]);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"M\""));
        assert!(out.contains("\"name\":\"broker-0\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ts\":1.000"));
        assert!(out.contains("\"dur\":1.000"));
        assert!(out.contains("\"cat\":\"broker\""));
        // Balanced braces — cheap structural sanity for hand-rolled JSON.
        let open = out.matches('{').count();
        let close = out.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_capture_renders_empty_but_valid() {
        let rec = FlightRecorder::new("idle", 16);
        let cap = NodeSpans::capture(&rec);
        assert_eq!(json_lines(std::slice::from_ref(&cap)), "");
        let chrome = chrome_trace(&[cap]);
        assert!(chrome.contains("\"name\":\"idle\""));
    }

    #[test]
    fn escapes_hostile_node_names() {
        let rec = FlightRecorder::new("evil\"\\node", 16);
        let ctx = TraceContext::root(0, true);
        rec.record(SpanEvent::new(&ctx, Stage::Accept, 0, 1));
        let out = json_lines(&[NodeSpans::capture(&rec)]);
        assert!(out.contains("evil\\\"\\\\node"));
    }
}
