//! # nb-telemetry — causal per-message tracing
//!
//! The aggregate counters of `nb-metrics` say *that* a deployment is
//! slow; this crate says *where* along a message's path. It is a
//! zero-dependency, Dapper-style causal tracing layer:
//!
//! * a [`TraceContext`] (trace id, parent span id, hop count, sampled
//!   flag) rides inside the `wire::Message` envelope and is propagated
//!   across every layer — transport framing, broker
//!   accept → auth-check → route → forward → enqueue → deliver, the
//!   tracing engine's trace/ping/verdict paths, tracker apply/reject,
//!   and TDN discovery/replication;
//! * each broker/engine/tracker/TDN records [`SpanEvent`]s into a
//!   per-instance [`FlightRecorder`] — a bounded, lock-free,
//!   overwrite-oldest ring buffer that never allocates on the hot
//!   path;
//! * sampling is controlled by a [`TelemetryConfig`]: probabilistic
//!   *head* sampling at publish ([`HeadSampler`]) plus a *tail* knob
//!   that always records the terminal span of traces whose end-to-end
//!   latency exceeds a threshold;
//! * [`export`] renders recorder contents as JSON-lines and Chrome
//!   `trace_event` JSON for offline analysis.
//!
//! Timestamps are nanoseconds on a process-wide monotonic timebase
//! ([`now_ns`]), so spans recorded by different in-process nodes are
//! directly comparable — which is what makes per-hop latency
//! attribution possible (see `bench/src/bin/trace_report.rs`).
//!
//! The knobs and formats are documented in `docs/OBSERVABILITY.md`
//! under "Causal tracing".

pub mod context;
pub mod export;
pub mod recorder;
pub mod sampler;

pub use context::{fresh_span_id, fresh_trace_id, TraceContext};
pub use export::{chrome_trace, json_lines, NodeSpans};
pub use recorder::{FlightRecorder, SpanEvent, Stage};
pub use sampler::{HeadSampler, TelemetryConfig};

use std::sync::LazyLock;
use std::time::Instant;

static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Nanoseconds since the process-wide monotonic epoch.
///
/// Every recorder stamps spans on this shared timebase, so spans from
/// different in-process nodes (brokers, engines, trackers, TDNs) can
/// be ordered and subtracted directly. Does not allocate.
pub fn now_ns() -> u64 {
    EPOCH.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
