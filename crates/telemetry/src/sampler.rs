//! Sampling knobs: head sampling at publish, tail thresholds for slow
//! traces, and the `TelemetryConfig` that carries both.

use crate::context::mix64;

/// Tuning knobs for the causal tracing layer.
///
/// Carried by `TracingConfig` and `BrokerConfig` so one struct
/// configures every recorder in a deployment. All knobs have safe
/// defaults: tracing enabled, nothing head-sampled (zero hot-path
/// cost), tail sampling only for outliers slower than one second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. When `false` no context is attached at publish
    /// and recorders drop everything.
    pub enabled: bool,
    /// Head-sampling rate in parts-per-million of published messages
    /// (`1_000_000` = trace everything, `0` = trace nothing).
    pub sample_ppm: u32,
    /// Tail-sampling threshold: an *unsampled* message whose observed
    /// end-to-end latency meets or exceeds this records a terminal
    /// marker span anyway, so slow outliers are never invisible.
    pub slow_threshold_ms: u64,
    /// Flight-recorder capacity in spans per node (rounded up to a
    /// power of two, minimum 16). Oldest spans are overwritten.
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_ppm: 0,
            slow_threshold_ms: 1_000,
            capacity: 4_096,
        }
    }
}

/// Deterministic head sampler: hashes the trace id against a
/// parts-per-million threshold, so every node in a deployment makes the
/// same decision for the same trace without coordination.
#[derive(Debug, Clone, Copy)]
pub struct HeadSampler {
    ppm: u32,
}

impl HeadSampler {
    /// Sampler keeping roughly `ppm` per million traces.
    pub fn new(ppm: u32) -> Self {
        Self { ppm }
    }

    /// Sampler configured from `cfg` (disabled config ⇒ keep nothing).
    pub fn from_config(cfg: &TelemetryConfig) -> Self {
        Self::new(if cfg.enabled { cfg.sample_ppm } else { 0 })
    }

    /// Whether the trace with this id should be head-sampled.
    pub fn decide(&self, trace_id: u128) -> bool {
        if self.ppm == 0 {
            return false;
        }
        if self.ppm >= 1_000_000 {
            return true;
        }
        let folded = (trace_id as u64) ^ ((trace_id >> 64) as u64);
        mix64(folded) % 1_000_000 < u64::from(self.ppm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::fresh_trace_id;

    #[test]
    fn zero_keeps_nothing_full_keeps_everything() {
        let none = HeadSampler::new(0);
        let all = HeadSampler::new(1_000_000);
        for _ in 0..64 {
            let id = fresh_trace_id();
            assert!(!none.decide(id));
            assert!(all.decide(id));
        }
    }

    #[test]
    fn decision_is_deterministic_per_trace() {
        let a = HeadSampler::new(500_000);
        let b = HeadSampler::new(500_000);
        for _ in 0..64 {
            let id = fresh_trace_id();
            assert_eq!(a.decide(id), b.decide(id));
        }
    }

    #[test]
    fn half_rate_is_roughly_half() {
        let s = HeadSampler::new(500_000);
        let kept = (0..2_000).filter(|_| s.decide(fresh_trace_id())).count();
        assert!((600..1_400).contains(&kept), "kept {kept} of 2000");
    }

    #[test]
    fn disabled_config_keeps_nothing() {
        let cfg = TelemetryConfig {
            enabled: false,
            sample_ppm: 1_000_000,
            ..TelemetryConfig::default()
        };
        assert!(!HeadSampler::from_config(&cfg).decide(fresh_trace_id()));
    }
}
