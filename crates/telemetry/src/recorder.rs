//! The flight recorder: a bounded, lock-free, overwrite-oldest ring of
//! span events, one per node instance.
//!
//! Writers never block and never allocate: a slot is claimed with one
//! `fetch_add`, guarded by a per-slot sequence word (a seqlock built
//! from plain atomics — no `unsafe`), and written with relaxed stores.
//! If two writers land on the same slot simultaneously the loser drops
//! its span and bumps a collision counter instead of spinning; for
//! telemetry, losing one span beats stalling a broker hot path.

use crate::context::TraceContext;
use crate::fresh_span_id;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Pipeline stage a span measures. Discriminants are stable because
/// they are packed into the recorder's slot words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Broker ingress: frame decoded, origin classified.
    Accept = 0,
    /// Broker constraint/permit/token enforcement.
    AuthCheck = 1,
    /// Broker subscription-table matching.
    Route = 2,
    /// Broker handing a message to an in-process consumer queue.
    Enqueue = 3,
    /// Broker delivering to an attached client endpoint.
    Deliver = 4,
    /// Broker forwarding to a neighbour broker.
    Forward = 5,
    /// Engine publishing a trace event.
    TracePublish = 6,
    /// Engine issuing a failure-detector ping.
    PingSend = 7,
    /// Engine emitting a suspicion/failure verdict.
    Verdict = 8,
    /// Engine consuming an inbound session message.
    Consume = 9,
    /// Tracker folding a verified trace into its view.
    TrackerApply = 10,
    /// Tracker refusing a trace for a missing/invalid token.
    TrackerReject = 11,
    /// TDN serving a topic-creation request.
    TdnCreate = 12,
    /// TDN evaluating a discovery query.
    TdnDiscover = 13,
    /// TDN accepting (or refusing) a replicated advertisement.
    TdnReplicate = 14,
    /// Synthetic stage for inter-node gaps, emitted by report tooling.
    Transit = 15,
    /// A supervised link left the Up state (outage observed).
    LinkDown = 16,
    /// A supervised link finished repair and returned to Up.
    LinkUp = 17,
}

impl Stage {
    /// Short lower-case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::AuthCheck => "auth",
            Stage::Route => "route",
            Stage::Enqueue => "enqueue",
            Stage::Deliver => "deliver",
            Stage::Forward => "forward",
            Stage::TracePublish => "trace_publish",
            Stage::PingSend => "ping",
            Stage::Verdict => "verdict",
            Stage::Consume => "consume",
            Stage::TrackerApply => "apply",
            Stage::TrackerReject => "reject",
            Stage::TdnCreate => "tdn_create",
            Stage::TdnDiscover => "tdn_discover",
            Stage::TdnReplicate => "tdn_replicate",
            Stage::Transit => "transit",
            Stage::LinkDown => "link_down",
            Stage::LinkUp => "link_up",
        }
    }

    /// Subsystem category used by the Chrome exporter's `cat` field.
    pub fn category(self) -> &'static str {
        match self {
            Stage::Accept
            | Stage::AuthCheck
            | Stage::Route
            | Stage::Enqueue
            | Stage::Deliver
            | Stage::Forward => "broker",
            Stage::TracePublish | Stage::PingSend | Stage::Verdict | Stage::Consume => "engine",
            Stage::TrackerApply | Stage::TrackerReject => "tracker",
            Stage::TdnCreate | Stage::TdnDiscover | Stage::TdnReplicate => "tdn",
            Stage::Transit | Stage::LinkDown | Stage::LinkUp => "transport",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Stage::Accept,
            1 => Stage::AuthCheck,
            2 => Stage::Route,
            3 => Stage::Enqueue,
            4 => Stage::Deliver,
            5 => Stage::Forward,
            6 => Stage::TracePublish,
            7 => Stage::PingSend,
            8 => Stage::Verdict,
            9 => Stage::Consume,
            10 => Stage::TrackerApply,
            11 => Stage::TrackerReject,
            12 => Stage::TdnCreate,
            13 => Stage::TdnDiscover,
            14 => Stage::TdnReplicate,
            15 => Stage::Transit,
            16 => Stage::LinkDown,
            17 => Stage::LinkUp,
            _ => return None,
        })
    }
}

/// One recorded span: a stage of one message's journey on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// Process-unique id of this span.
    pub span_id: u64,
    /// Span that caused this one (0 = root).
    pub parent_span: u64,
    /// Broker hop count at the time of recording.
    pub hop: u8,
    /// Pipeline stage measured.
    pub stage: Stage,
    /// Start, ns on the process-wide monotonic timebase.
    pub start_ns: u64,
    /// End, ns on the process-wide monotonic timebase.
    pub end_ns: u64,
}

impl SpanEvent {
    /// Span for `stage` under `ctx`, with a fresh span id. Allocates
    /// nothing.
    pub fn new(ctx: &TraceContext, stage: Stage, start_ns: u64, end_ns: u64) -> Self {
        Self {
            trace_id: ctx.trace_id,
            span_id: fresh_span_id(),
            parent_span: ctx.parent_span,
            hop: ctx.hop_count,
            stage,
            start_ns,
            end_ns,
        }
    }

    /// Span duration in nanoseconds (0 if the clock stepped oddly).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One ring slot. `seq` is the seqlock word: even = stable, odd = a
/// writer is mid-flight; it advances by 2 per successful write, so
/// readers can detect both torn reads and never-written slots (seq 0
/// with an all-zero payload is skipped via the span id).
struct Slot {
    seq: AtomicU64,
    trace_hi: AtomicU64,
    trace_lo: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    /// stage in bits 0..8, hop in bits 8..16.
    meta: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace_hi: AtomicU64::new(0),
            trace_lo: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }
}

/// A per-node, bounded, overwrite-oldest span ring.
///
/// `record` is wait-free and allocation-free; `snapshot` is a
/// best-effort consistent read that skips slots caught mid-write.
pub struct FlightRecorder {
    node: String,
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    recorded: AtomicU64,
    collisions: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("node", &self.node)
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("collisions", &self.collisions())
            .finish()
    }
}

impl FlightRecorder {
    /// Recorder for `node` holding `capacity` spans (rounded up to a
    /// power of two, minimum 16).
    pub fn new(node: impl Into<String>, capacity: usize) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        Self {
            node: node.into(),
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Name of the node this recorder belongs to.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans successfully recorded over the recorder's lifetime
    /// (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans dropped because two writers collided on one slot.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Records a span. Wait-free; never allocates; overwrites the
    /// oldest span when the ring is full.
    pub fn record(&self, ev: SpanEvent) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) as usize;
        let slot = &self.slots[idx];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq & 1 == 1 {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.trace_hi
            .store((ev.trace_id >> 64) as u64, Ordering::Relaxed);
        slot.trace_lo.store(ev.trace_id as u64, Ordering::Relaxed);
        slot.span.store(ev.span_id, Ordering::Relaxed);
        slot.parent.store(ev.parent_span, Ordering::Relaxed);
        slot.meta.store(
            u64::from(ev.stage as u8) | (u64::from(ev.hop) << 8),
            Ordering::Relaxed,
        );
        slot.start_ns.store(ev.start_ns, Ordering::Relaxed);
        slot.end_ns.store(ev.end_ns, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Best-effort consistent copy of the ring's current contents,
    /// sorted by start time. Slots caught mid-write are skipped.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let trace_hi = slot.trace_hi.load(Ordering::Relaxed);
            let trace_lo = slot.trace_lo.load(Ordering::Relaxed);
            let span = slot.span.load(Ordering::Relaxed);
            let parent = slot.parent.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            let Some(stage) = Stage::from_u8((meta & 0xff) as u8) else {
                continue;
            };
            out.push(SpanEvent {
                trace_id: (u128::from(trace_hi) << 64) | u128::from(trace_lo),
                span_id: span,
                parent_span: parent,
                hop: ((meta >> 8) & 0xff) as u8,
                stage,
                start_ns,
                end_ns,
            });
        }
        out.sort_by_key(|e| (e.start_ns, e.span_id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(trace: u128, start: u64) -> SpanEvent {
        SpanEvent {
            trace_id: trace,
            span_id: fresh_span_id(),
            parent_span: 0,
            hop: 2,
            stage: Stage::Route,
            start_ns: start,
            end_ns: start + 10,
        }
    }

    #[test]
    fn records_and_snapshots_in_start_order() {
        let rec = FlightRecorder::new("n0", 16);
        rec.record(ev(1, 300));
        rec.record(ev(2, 100));
        rec.record(ev(3, 200));
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.collisions(), 0);
    }

    #[test]
    fn round_trips_every_field() {
        let rec = FlightRecorder::new("n0", 16);
        let trace = (u128::from(u64::MAX) << 64) | 0x1234_5678;
        let span = SpanEvent {
            trace_id: trace,
            span_id: 42,
            parent_span: 7,
            hop: 255,
            stage: Stage::TdnReplicate,
            start_ns: 1_000,
            end_ns: 2_500,
        };
        rec.record(span);
        let snap = rec.snapshot();
        assert_eq!(snap, vec![span]);
        assert_eq!(snap[0].dur_ns(), 1_500);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let rec = FlightRecorder::new("n0", 16);
        for i in 0..40u64 {
            rec.record(ev(u128::from(i), i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 16);
        // Only the newest 16 survive.
        assert!(snap.iter().all(|e| e.start_ns >= 24));
        assert_eq!(rec.recorded(), 40);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRecorder::new("n", 0).capacity(), 16);
        assert_eq!(FlightRecorder::new("n", 17).capacity(), 32);
        assert_eq!(FlightRecorder::new("n", 1024).capacity(), 1024);
    }

    #[test]
    fn concurrent_writers_never_corrupt_spans() {
        let rec = Arc::new(FlightRecorder::new("n0", 64));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Encode the writer id into every field so torn
                        // mixes are detectable.
                        let tag = t * 1_000_000 + i;
                        rec.record(SpanEvent {
                            trace_id: u128::from(tag),
                            span_id: tag,
                            parent_span: tag,
                            hop: t as u8,
                            stage: Stage::Accept,
                            start_ns: tag,
                            end_ns: tag,
                        });
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        for e in rec.snapshot() {
            assert_eq!(e.trace_id, u128::from(e.span_id));
            assert_eq!(e.parent_span, e.span_id);
            assert_eq!(e.start_ns, e.span_id);
            assert_eq!(u64::from(e.hop), e.span_id / 1_000_000);
        }
        assert_eq!(rec.recorded() + rec.collisions(), 8_000);
    }
}
