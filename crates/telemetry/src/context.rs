//! Trace context: the causal identity a message carries across hops.

use std::sync::atomic::{AtomicU64, Ordering};

/// Causal identity carried inside a `wire::Message` envelope.
///
/// The context is small, `Copy`, and deliberately excluded from
/// signature/MAC coverage: `hop_count` mutates at every broker-to-broker
/// hop, and re-signing at each hop would defeat the paper's end-to-end
/// authentication model. Tampering with it can therefore corrupt
/// *telemetry*, never *authorization*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the end-to-end causal trace (all spans of one
    /// message's journey share it).
    pub trace_id: u128,
    /// Span id of the sender-side span that caused this message, so a
    /// receiver can parent its own spans under it.
    pub parent_span: u64,
    /// Broker-to-broker hops taken so far; doubles as a routing TTL
    /// (see `BrokerConfig::max_hops`).
    pub hop_count: u8,
    /// Head-sampling decision made at publish time. Unsampled messages
    /// still carry the context (for the TTL and for tail sampling) but
    /// recorders skip them on the hot path.
    pub sampled: bool,
}

impl TraceContext {
    /// A root context for a freshly published message: new trace id,
    /// the given parent span, zero hops.
    pub fn root(parent_span: u64, sampled: bool) -> Self {
        Self {
            trace_id: fresh_trace_id(),
            parent_span,
            hop_count: 0,
            sampled,
        }
    }

    /// Copy of this context with the hop count incremented
    /// (saturating — the TTL check fires long before 255).
    #[must_use]
    pub fn next_hop(mut self) -> Self {
        self.hop_count = self.hop_count.saturating_add(1);
        self
    }

    /// Copy of this context re-parented under `span` (used when a node
    /// forwards the message onward after recording its own span).
    #[must_use]
    pub fn child_of(mut self, span: u64) -> Self {
        self.parent_span = span;
        self
    }
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// SplitMix64 finalizer — a cheap, high-quality bit mixer.
pub(crate) fn mix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A process-unique span id. Sequential under the hood, mixed so ids
/// from concurrent threads do not visually collide in exports.
pub fn fresh_span_id() -> u64 {
    let n = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    // Mixing a distinct nonzero sequence is injective, so ids are
    // unique for the life of the process.
    mix64(n)
}

/// A process-unique 128-bit trace id.
///
/// The low half mixes in the monotonic clock so ids differ across
/// processes/restarts; the high half mixes a process-local counter so
/// they are unique within one.
pub fn fresh_trace_id() -> u128 {
    let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    let hi = mix64(n ^ 0x7c15_9e37_79b9_7f4a);
    let lo = mix64(crate::now_ns().wrapping_add(n.rotate_left(32)));
    (u128::from(hi) << 64) | u128::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique() {
        let a = fresh_span_id();
        let b = fresh_span_id();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a, b);
    }

    #[test]
    fn root_starts_at_hop_zero() {
        let ctx = TraceContext::root(7, true);
        assert_eq!(ctx.hop_count, 0);
        assert_eq!(ctx.parent_span, 7);
        assert!(ctx.sampled);
    }

    #[test]
    fn next_hop_increments_and_saturates() {
        let ctx = TraceContext::root(0, false);
        assert_eq!(ctx.next_hop().hop_count, 1);
        let mut far = ctx;
        far.hop_count = u8::MAX;
        assert_eq!(far.next_hop().hop_count, u8::MAX);
    }

    #[test]
    fn child_of_reparents_only() {
        let ctx = TraceContext::root(1, true).next_hop();
        let child = ctx.child_of(99);
        assert_eq!(child.parent_span, 99);
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_eq!(child.hop_count, ctx.hop_count);
    }
}
