//! Offline stand-in for `crossbeam`.
//!
//! Provides the MPMC channel surface this workspace uses
//! ([`channel::unbounded`] with cloneable senders *and* receivers,
//! `recv`/`recv_timeout`/`try_recv`, `len`) implemented over a
//! `Mutex<VecDeque>` + `Condvar`. Disconnection semantics mirror
//! crossbeam: a send fails once every receiver is gone; a receive
//! fails once every sender is gone and the queue has drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers dropped;
    /// carries the unsent value back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel drained
    /// and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel drained and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel drained and all senders dropped.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.cv.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = 0;
            while got < 1000 {
                rx.recv_timeout(Duration::from_secs(5)).unwrap();
                got += 1;
            }
            h.join().unwrap();
        }

        #[test]
        fn cloned_receivers_share_the_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!((a, b), (1, 2));
        }
    }
}
