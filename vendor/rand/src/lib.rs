//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the *exact* RNG surface it consumes: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] /
//! [`RngExt`] methods `fill_bytes`, `next_u32`, `next_u64`,
//! `random::<f64>()` and `random_range`. The generator is
//! SplitMix64 — statistically solid for simulation and Miller–Rabin
//! witness selection, deterministic for a given seed, and emphatically
//! **not** a CSPRNG (neither was the seeded `StdRng` usage it
//! replaces; every call site seeds deterministically for
//! reproducibility).

/// Core random-number generation: one raw 64-bit output word. All the
/// user-facing methods live on [`Rng`] so that the single common
/// import (`use rand::Rng`) suffices at every call site.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn raw_u64(&mut self) -> u64;
}

/// Sampling conveniences layered over [`RngCore`].
///
/// Re-declares the [`RngCore`] methods as provided methods so call
/// sites that import only `rand::Rng` (the common idiom) can reach
/// `fill_bytes`/`next_u64` without also importing the supertrait.
pub trait Rng: RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        self.raw_u64()
    }

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.raw_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.raw_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.raw_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`; integers: uniform over the type).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Extension alias kept for call sites that import `rand::RngExt`.
pub use Rng as RngExt;

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.raw_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.raw_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.raw_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.raw_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable over a half-open range.
pub trait UniformRange: Sized {
    /// Draws uniformly from `range` (panics if empty, like rand).
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Rejection sampling kills modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.raw_u64();
                    if v < zone {
                        return range.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize);

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn raw_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes
            // BigCrush when used as a stream.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; n];
            rng.fill_bytes(&mut buf);
            if n >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_in_bounds_and_exhaustive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
