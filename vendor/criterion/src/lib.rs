//! Offline stand-in for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros so the workspace's
//! benches compile and run without crates.io access. Timing is a
//! simple calibrated loop (no statistics, no plots): each benchmark
//! prints its mean per-iteration wall time.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean iteration
    /// time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<40} {mean_ns:>12.1} ns/iter ({} iters)", b.iters);
        self
    }

    /// Opens a named benchmark group. The stub ignores group-level
    /// tuning (sample sizes, measurement time) and prefixes member
    /// names with the group name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Named group of benchmarks, mirroring criterion's builder. Tuning
/// methods are accepted and ignored; members run like
/// [`Criterion::bench_function`] with a `group/member` name.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's calibration ignores
    /// it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's calibration ignores
    /// it.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as a named member of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`. Calibrates the iteration count to
    /// roughly 100 ms of wall time, capped to keep cold benches fast.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let t0 = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.total = t0.elapsed();
        self.iters = iters;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
