//! Deterministic case generation for the [`crate::proptest!`] macro.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator driving strategy sampling. Deterministic per
/// property (seeded from the property name) so failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator deterministically from a property name.
    pub fn for_property(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; returns `lo` when empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }
}
