//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate
//! reimplements the strategy combinators and macros the workspace's
//! property tests actually use: `any`, `Just`, ranges and tuples as
//! strategies, `prop_map`/`prop_filter`, `prop_oneof!` (weighted and
//! unweighted), `collection::vec`, `option::of`, `array::uniform16`,
//! simple `"[class]{m,n}"` string patterns, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic SplitMix64 stream — no shrinking, no persistence —
//! which keeps failures reproducible run to run.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `range`.
    pub fn vec<S: Strategy>(element: S, range: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, range }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        range: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_usize(self.range.start, self.range.end);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Array strategies (`proptest::array::uniform16`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_n {
        ($name:ident, $n:expr) => {
            /// Strategy for a fixed-size array of independent draws.
            pub fn $name<S: Strategy>(element: S) -> impl Strategy<Value = [S::Value; $n]> {
                UniformArray::<S, $n> { element }
            }
        };
    }

    uniform_n!(uniform4, 4);
    uniform_n!(uniform8, 8);
    uniform_n!(uniform16, 16);
    uniform_n!(uniform32, 32);

    struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.gen_value(rng))
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`None` with probability 1/4,
    /// proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// The glob import property tests start from.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
