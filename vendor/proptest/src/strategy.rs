//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of random values, composable via
/// [`Strategy::prop_map`] and [`Strategy::prop_filter`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value. (Named `gen_value` rather than proptest's
    /// tree-based `new_tree`; this stand-in does not shrink.)
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, retrying (bounded) until one
    /// passes. `_whence` labels the filter for diagnostics.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence: _whence,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: uniform over the whole domain,
/// with a bias toward boundary values for integers.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 boundary bias: edges find more bugs.
                match rng.next_u64() % 8 {
                    0 => match rng.next_u64() % 3 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        _ => 1 as $t,
                    },
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises NaN, infinities, subnormals.
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}

/// Weighted choice between type-erased strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % u64::from(self.total)) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// String pattern strategies: `"literal[class]{m,n}"`. Supports the
/// tiny regex subset property tests actually write — literal chars,
/// one-level `[...]` classes with ranges, and `{n}` / `{m,n}` counts.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let (lo, hi) = atom.count;
            let n = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
            for _ in 0..n {
                let i = (rng.next_u64() % atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    count: (u32, u32),
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = if c == '[' {
            let mut raw = Vec::new();
            for m in chars.by_ref() {
                if m == ']' {
                    break;
                }
                raw.push(m);
            }
            // Expand `a-z` ranges; a leading or trailing `-` is a
            // literal, as in real character classes.
            let mut set = Vec::new();
            let mut i = 0;
            while i < raw.len() {
                if i + 2 < raw.len() && raw[i + 1] == '-' {
                    for r in (raw[i] as u32)..=(raw[i + 2] as u32) {
                        if let Some(rc) = char::from_u32(r) {
                            set.push(rc);
                        }
                    }
                    i += 3;
                } else {
                    set.push(raw[i]);
                    i += 1;
                }
            }
            set
        } else {
            vec![c]
        };
        let count = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for m in chars.by_ref() {
                if m == '}' {
                    break;
                }
                spec.push(m);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern count"),
                    hi.trim().parse().expect("pattern count"),
                ),
                None => {
                    let n = spec.trim().parse().expect("pattern count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: alphabet,
            count,
        });
    }
    atoms
}

/// Boxes a strategy (helper the [`crate::prop_oneof!`] macro calls).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Weighted choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat)),)+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) {...}`
/// becomes a `#[test]` that generates `cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_property(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut rng);)+
                    // prop_assume! skips a case by returning from this
                    // closure; prop_assert! panics (no shrinking).
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_property("strategy-unit-tests")
    }

    #[test]
    fn pattern_strategy_respects_class_and_count() {
        let strat = "[A-Za-z0-9_-]{1,12}";
        let mut r = rng();
        for _ in 0..500 {
            let s = Strategy::gen_value(&strat, &mut r);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn union_honors_weights_roughly() {
        let u = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut r = rng();
        let hits = (0..1_000)
            .filter(|_| Strategy::gen_value(&u, &mut r))
            .count();
        assert!(hits > 800, "expected ~900 true draws, got {hits}");
    }

    #[test]
    fn vec_and_tuple_and_range_compose() {
        let strat = crate::collection::vec((0u8..4, 1u64..100), 2..5);
        let mut r = rng();
        for _ in 0..200 {
            let v = Strategy::gen_value(&strat, &mut r);
            assert!((2..5).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((1..100).contains(&b));
            }
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(Strategy::gen_value(&strat, &mut r) % 2, 0);
        }
    }
}
