//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API (`lock()` returns the guard directly; a poisoned lock — a
//! panic while held — propagates by unwrapping into the inner value,
//! matching parking_lot's "poisoning does not exist" semantics).
//! Only the surface this workspace uses is provided: `Mutex`,
//! `RwLock`, and `Condvar` with `wait`/`wait_for`.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock without lock poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar`]
/// temporarily surrender the underlying std guard during waits while
/// callers keep holding `&mut MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard surrendered")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard surrendered")
    }
}

/// A reader-writer lock without lock poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Outcome of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard surrendered");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard surrendered");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "worker never notified");
        }
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers_value() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
