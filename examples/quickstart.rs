//! Quickstart: one traced entity, one tracker, two brokers.
//!
//! Demonstrates the paper's core loop end to end: topic creation at
//! the TDN, authorized registration, heartbeats, a simulated crash,
//! and the tracker's view moving Available → Suspected → Failed.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use entity_tracing::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    println!("== entity-tracing quickstart ==\n");

    // Stand up the full stack: CA, 3 replicated TDNs, a 2-broker
    // chain over ~1.5 ms simulated links, one tracing engine per
    // broker, and a broker directory.
    let mut config = TracingConfig::default();
    config.ping_interval = Duration::from_millis(200);
    config.response_timeout = Duration::from_millis(100);
    config.rsa_bits = 512; // keep the demo snappy
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");
    println!("deployment up: {} brokers, {} TDNs", deployment.network.len(), deployment.tdns.len());

    // The entity requests tracing (§3.1–3.2): it creates its trace
    // topic, registers with broker 0, and delegates publication
    // rights via an authorization token.
    let entity = deployment
        .traced_entity(
            0,
            "web-service",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .expect("traced entity");
    println!(
        "entity registered: trace topic {} session {}",
        entity.trace_topic(),
        entity.session_id()
    );

    // A tracker on the *other* broker discovers the trace topic and
    // subscribes to change notifications + heartbeats.
    let tracker = deployment
        .tracker(
            1,
            "ops-console",
            "web-service",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .expect("tracker");
    println!("tracker attached on broker 1\n");

    // Watch the availability view come alive.
    wait_for(&tracker, "web-service", EntityStatus::Available, 10_000);
    let record = tracker.view().get("web-service").unwrap();
    println!(
        "tracker sees web-service AVAILABLE ({} traces, pings answered: {})",
        record.traces_seen,
        entity.pings_answered()
    );

    // The entity reports some load.
    entity
        .report_load(LoadInformation {
            cpu_percent: 42.0,
            memory_used_bytes: 6 << 30,
            memory_total_bytes: 16 << 30,
            workload: 17,
        })
        .unwrap();

    // Simulate a crash: the entity stops answering pings. The broker
    // escalates FAILURE_SUSPICION → FAILED (§3.3).
    println!("\nsimulating crash of web-service…");
    entity.stop();
    wait_for(&tracker, "web-service", EntityStatus::Suspected, 15_000);
    println!("tracker sees web-service SUSPECTED");
    wait_for(&tracker, "web-service", EntityStatus::Failed, 15_000);
    println!("tracker sees web-service FAILED");

    let stats = deployment.engine(0).stats();
    println!(
        "\nengine stats: {} pings, {} traces published, {} gated, {} suspicions, {} failures",
        stats.pings_sent,
        stats.traces_published,
        stats.traces_gated,
        stats.suspicions,
        stats.failures
    );
}

fn wait_for(tracker: &Tracker, entity: &str, want: EntityStatus, timeout_ms: u64) {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    while Instant::now() < deadline {
        if tracker.view().status(entity) == Some(want) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {entity} to become {want:?}");
}
