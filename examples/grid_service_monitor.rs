//! Grid service monitor: many services on several brokers, one
//! operations console tracking them all with selective interests.
//!
//! This is the workload the paper's introduction motivates: "an
//! application may be interested in the availability of a resource at
//! all times … a user would be interested in the availability of a
//! given service." The console subscribes only to the categories it
//! needs per service — change notifications for everything, plus load
//! for the compute services — instead of drowning in N×(N−1)
//! heartbeats.
//!
//! Run with: `cargo run --release --example grid_service_monitor`

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use entity_tracing::prelude::*;
use std::time::{Duration, Instant};

const SERVICES: [(&str, bool); 5] = [
    // (service name, monitor load too?)
    ("compute-node-a", true),
    ("compute-node-b", true),
    ("metadata-service", false),
    ("storage-gateway", false),
    ("job-scheduler", false),
];

fn main() {
    println!("== grid service monitor ==\n");

    let mut config = TracingConfig::default();
    config.ping_interval = Duration::from_millis(250);
    config.response_timeout = Duration::from_millis(120);
    config.rsa_bits = 512;
    // Star topology: hub broker 0, three leaf brokers (Figure 3 shape).
    let deployment = Deployment::new(
        Topology::Star(3),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    // Spread the services over the leaf brokers.
    let mut entities = Vec::new();
    for (i, (name, _)) in SERVICES.iter().enumerate() {
        let broker_idx = 1 + (i % 3);
        let entity = deployment
            .traced_entity(
                broker_idx,
                name,
                DiscoveryRestrictions::Open,
                SigningMode::RsaSign,
                false,
            )
            .expect("entity");
        println!("{name} registered at broker {broker_idx}");
        entities.push(entity);
    }

    // The console sits on the hub and tracks every service.
    let mut trackers = Vec::new();
    for (name, with_load) in SERVICES {
        let mut interests = vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates];
        if with_load {
            interests.push(TraceCategory::Load);
        }
        let tracker = deployment
            .tracker(0, &format!("console-{name}"), name, interests)
            .expect("tracker");
        trackers.push((name, tracker));
    }
    println!("\nconsole tracking {} services from the hub\n", trackers.len());

    // Compute nodes report load.
    for (i, entity) in entities.iter().enumerate() {
        if SERVICES[i].1 {
            entity
                .report_load(LoadInformation {
                    cpu_percent: 20.0 + 30.0 * i as f64,
                    memory_used_bytes: (i as u64 + 1) << 30,
                    memory_total_bytes: 32 << 30,
                    workload: 5 * (i as u64 + 1),
                })
                .unwrap();
        }
    }

    // Wait for full visibility.
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        let visible = trackers
            .iter()
            .filter(|(name, t)| t.view().status(name) == Some(EntityStatus::Available))
            .count();
        if visible == trackers.len() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // One service fails; the console should notice just that one.
    println!("killing metadata-service…\n");
    entities[2].stop();
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if trackers[2].1.view().status("metadata-service") == Some(EntityStatus::Failed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    println!("console status board:");
    for (name, tracker) in &trackers {
        let record = tracker.view().get(name);
        match record {
            Some(r) => {
                let load = r
                    .load
                    .map(|l| format!(" load={:.0}% cpu, workload={}", l.cpu_percent, l.workload))
                    .unwrap_or_default();
                println!("  {name:<18} {:?}{load} ({} traces)", r.status, r.traces_seen);
            }
            None => println!("  {name:<18} (no data)"),
        }
    }

    let healthy = trackers
        .iter()
        .filter(|(name, t)| t.view().status(name) == Some(EntityStatus::Available))
        .count();
    println!("\n{healthy}/{} services healthy", trackers.len());
}
