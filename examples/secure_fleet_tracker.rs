//! Secure fleet tracking: confidential traces, restricted discovery,
//! and the §6.3 signing-cost optimization.
//!
//! A fleet of workers is traced with **encrypted traces** (§5.1): only
//! trackers holding the sealed trace key can read them. Discovery of
//! the trace topics is restricted to the authorized operations
//! subjects (§3.1) — an unauthorized console cannot even learn the
//! 128-bit trace topic exists, which is also the scheme's DoS shield
//! (§5.2). Workers use the symmetric-key signing optimization for
//! their heartbeat path (§6.3).
//!
//! Run with: `cargo run --release --example secure_fleet_tracker`

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use entity_tracing::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    println!("== secure fleet tracker ==\n");

    let mut config = TracingConfig::default();
    config.ping_interval = Duration::from_millis(250);
    config.response_timeout = Duration::from_millis(120);
    config.rsa_bits = 512;
    let deployment = Deployment::new(
        Topology::Chain(3),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    // Three workers, traced with encryption on, discovery restricted
    // to the fleet console, and symmetric-key message authentication.
    let mut workers = Vec::new();
    for i in 0..3 {
        let name = format!("worker-{i}");
        let entity = deployment
            .traced_entity(
                0,
                &name,
                DiscoveryRestrictions::AllowedSubjects(vec![
                    "tracker:fleet-console-0".to_string(),
                    "tracker:fleet-console-1".to_string(),
                    "tracker:fleet-console-2".to_string(),
                ]),
                SigningMode::SymmetricKey, // §6.3 optimization
                true,                      // §5.1 secured traces
            )
            .expect("worker");
        println!("{name}: secured tracing enabled (topic {})", entity.trace_topic());
        workers.push((name, entity));
    }

    // The authorized consoles (their subjects match the restriction).
    let mut consoles = Vec::new();
    for (i, (name, _)) in workers.iter().enumerate() {
        let tracker = deployment
            .tracker(
                2,
                &format!("fleet-console-{i}"),
                name,
                vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
            )
            .expect("authorized tracker");
        consoles.push((name.clone(), tracker));
    }
    println!("\nfleet consoles attached (authorized)");

    // An unauthorized console: discovery is silently ignored, so it
    // cannot even construct the subscription topics.
    let spy = deployment.tracker(
        2,
        "rogue-console",
        "worker-0",
        vec![TraceCategory::AllUpdates],
    );
    match spy {
        Err(e) => println!("rogue-console rejected: {e}"),
        Ok(_) => panic!("unauthorized discovery must fail"),
    }

    // Wait for keys to be delivered and encrypted traces to decode.
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let ready = consoles
            .iter()
            .filter(|(name, t)| {
                t.has_trace_key() && t.view().status(name) == Some(EntityStatus::Available)
            })
            .count();
        if ready == consoles.len() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    println!("\nfleet status (decrypted traces):");
    for (name, tracker) in &consoles {
        let status = tracker.view().status(name);
        println!(
            "  {name:<10} {:?}  key={} traces={} rejected-tokens={}",
            status,
            tracker.has_trace_key(),
            tracker.traces_applied(),
            tracker.rejected_tokens()
        );
        assert_eq!(status, Some(EntityStatus::Available));
        assert!(tracker.has_trace_key());
    }

    let engine_stats = deployment.engine(0).stats();
    println!(
        "\nengine at broker 0: {} keys delivered, {} traces published, 0 expected auth failures (got {})",
        engine_stats.keys_delivered, engine_stats.traces_published, engine_stats.auth_failures
    );
}
