//! Failover controller: remedial action driven by availability traces.
//!
//! "In several cases remedial actions are taken in response to the
//! failure/unavailability of a given entity" (§1). This example runs
//! a primary/standby pair: a controller tracks the primary's change
//! notifications and, on FAILED, promotes the standby (a state
//! transition the rest of the system observes through the standby's
//! own traces).
//!
//! Run with: `cargo run --release --example failover_controller`

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use entity_tracing::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    println!("== failover controller ==\n");

    let mut config = TracingConfig::default();
    config.ping_interval = Duration::from_millis(150);
    config.response_timeout = Duration::from_millis(80);
    config.suspicion_threshold = 2;
    config.failure_threshold = 2;
    config.rsa_bits = 512;
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    let primary = deployment
        .traced_entity(
            0,
            "db-primary",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .expect("primary");
    let standby = deployment
        .traced_entity(
            0,
            "db-standby",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .expect("standby");
    // The standby idles in RECOVERING (warm standby).
    standby.set_state(EntityState::Recovering).unwrap();

    // The controller tracks both.
    let watch_primary = deployment
        .tracker(
            1,
            "controller-p",
            "db-primary",
            vec![TraceCategory::ChangeNotifications],
        )
        .expect("tracker primary");
    let watch_standby = deployment
        .tracker(
            1,
            "controller-s",
            "db-standby",
            vec![
                TraceCategory::ChangeNotifications,
                TraceCategory::StateTransitions,
            ],
        )
        .expect("tracker standby");

    wait_status(&watch_primary, "db-primary", EntityStatus::Available);
    println!("primary AVAILABLE, standby warm\n");

    // Disaster strikes.
    println!("primary crashes…");
    primary.stop();

    // Controller loop: wait for FAILED, then promote the standby.
    wait_status(&watch_primary, "db-primary", EntityStatus::Failed);
    println!("controller observed primary FAILED → promoting standby");
    standby.set_state(EntityState::Ready).unwrap();

    // The promotion is visible through the standby's state-transition
    // traces.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let state = watch_standby.view().get("db-standby").and_then(|r| r.state);
        if state == Some(EntityState::Ready) {
            break;
        }
        assert!(Instant::now() < deadline, "standby promotion not observed");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("standby promoted: state READY, serving traffic");

    println!(
        "\nfinal view: primary={:?}, standby={:?} (state {:?})",
        watch_primary.view().status("db-primary"),
        watch_standby.view().status("db-standby"),
        watch_standby.view().get("db-standby").and_then(|r| r.state),
    );
}

fn wait_status(tracker: &Tracker, entity: &str, want: EntityStatus) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if tracker.view().status(entity) == Some(want) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {entity} to become {want:?}");
}
