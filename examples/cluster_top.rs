//! `top` for the cluster: a live terminal scoreboard rendered from
//! the telemetry plane.
//!
//! Every broker, tracing engine and TDN self-publishes its metrics on
//! the constrained Obs topic; a [`ClusterAggregator`] subscribed at
//! broker 0 reassembles the stream into per-node time series. This
//! example stands up a busy deployment (entities pinging, trackers
//! watching), then refreshes a table once a second: nodes ranked by
//! publish rate, with health, heartbeat sequence, flap count and drop
//! totals per node, and the cluster rollup underneath.
//!
//! Run with: `cargo run --release --example cluster_top`

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use entity_tracing::metrics::SnapshotValue;
use entity_tracing::prelude::*;
use std::time::Duration;

const REFRESHES: usize = 6;

/// The per-kind "work done" counter the table ranks nodes by.
fn work_counter(kind: &str) -> &'static str {
    match kind {
        "broker" => "broker.publish.accepted",
        "engine" => "tracing.pings.sent",
        "tdn" => "tdn.discovery.queries",
        _ => "",
    }
}

/// Frames dropped or refused by a node, summed over its drop counters.
fn drops(total: &entity_tracing::metrics::Snapshot) -> u64 {
    ["broker.reject.constraint", "broker.drop.spurious_token", "broker.drop.ttl_exceeded"]
        .iter()
        .filter_map(|n| total.counter(n))
        .sum()
}

fn main() {
    println!("== cluster top: telemetry-plane scoreboard ==\n");

    let mut config = TracingConfig::default();
    config.ping_interval = Duration::from_millis(200);
    config.response_timeout = Duration::from_millis(100);
    config.rsa_bits = 512;
    let deployment = Deployment::new(
        Topology::Chain(3),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    // Background load so the board has something to show.
    let entity_far = deployment
        .traced_entity(2, "svc-far", DiscoveryRestrictions::Open, SigningMode::RsaSign, false)
        .expect("entity");
    let entity_near = deployment
        .traced_entity(0, "svc-near", DiscoveryRestrictions::Open, SigningMode::RsaSign, false)
        .expect("entity");
    let _watcher = deployment
        .tracker(0, "ops-console", "svc-far", vec![TraceCategory::ChangeNotifications])
        .expect("tracker");

    // The telemetry plane: signed publishers on every node, aggregator
    // at broker 0, all pumping in the background.
    let obs = deployment
        .telemetry(PublisherConfig { interval_ms: 500, full_every: 8 })
        .expect("telemetry plane");
    obs.start();

    let clock = system_clock();
    for frame in 0..REFRESHES {
        std::thread::sleep(Duration::from_secs(1));
        let agg = obs.aggregator();
        let now_ms = clock.now_ms();

        // Rank nodes by their kind's work-counter rate over the last
        // 5 seconds of retained samples.
        let mut rows: Vec<(f64, String)> = agg
            .health_report(now_ms)
            .into_iter()
            .map(|h| {
                let total = agg.node_total(&h.node).unwrap_or_default();
                let rate = agg
                    .window_delta(&h.node, Duration::from_secs(5))
                    .and_then(|w| w.rate(work_counter(h.kind.label())))
                    .unwrap_or(0.0);
                let row = format!(
                    "{:<24} {:<7} {:<9} {:>5} {:>6} {:>9.1} {:>7}",
                    h.node,
                    h.kind.label(),
                    h.state.label(),
                    h.seq,
                    h.flaps,
                    rate,
                    drops(&total),
                );
                (rate, row)
            })
            .collect();
        rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        // Redraw in place: clear screen, home the cursor. (Skipped for
        // the first frame so the preamble above stays visible once.)
        if frame > 0 {
            print!("\x1b[2J\x1b[H");
        }
        println!("cluster top — refresh {}/{REFRESHES}", frame + 1);
        println!(
            "{:<24} {:<7} {:<9} {:>5} {:>6} {:>9} {:>7}",
            "NODE", "KIND", "HEALTH", "SEQ", "FLAPS", "WORK/s", "DROPS"
        );
        for (_, row) in &rows {
            println!("{row}");
        }

        let rollup = agg.rollup();
        let cluster_counters: u64 = rollup
            .entries()
            .iter()
            .filter_map(|e| match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum();
        let stats = agg.metrics_snapshot();
        println!(
            "\ncluster: {} nodes, {} counted events  |  frames: {} ok, {} dup, {} gap, {} rejected",
            rows.len(),
            cluster_counters,
            stats.counter("obs.frames.accepted").unwrap_or(0),
            stats.counter("obs.frames.duplicate").unwrap_or(0),
            stats.counter("obs.frames.gap").unwrap_or(0),
            stats.counter("obs.frames.rejected").unwrap_or(0),
        );
    }

    // Parting shot: the same view, exported both ways.
    let now_ms = clock.now_ms();
    let prom = entity_tracing::obs::prometheus_text(obs.aggregator(), now_ms);
    let json = entity_tracing::obs::json_export(obs.aggregator(), now_ms, Duration::from_secs(5));
    println!(
        "\nexports: prometheus text {} B, json document {} B",
        prom.len(),
        json.len()
    );

    drop(entity_far);
    drop(entity_near);
}
