#!/usr/bin/env bash
# Local CI gate: everything a change must pass before merging.
#
#   ./ci.sh            # build + test + clippy + strict docs
#   ./ci.sh --quick    # build + test only
#
# The workspace denies missing_docs ([workspace.lints.rust] in
# Cargo.toml), so the ordinary builds below already enforce
# documentation on every public item; the doc step additionally fails
# on broken intra-doc links and other rustdoc warnings.
set -euo pipefail
cd "$(dirname "$0")"

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test --workspace --quiet

if ! $quick; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "== clippy =="
        cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "== clippy not installed; skipping =="
    fi

    echo "== docs (strict) =="
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

    # Causal-tracing smoke: drives a secured 3-broker deployment and
    # asserts (inside the binary) that the exports are non-empty and at
    # least one trace covers the complete publish→hop2→apply chain.
    echo "== trace report (smoke) =="
    cargo run --release -p nb-bench --bin trace_report -- --smoke

    # Fault-tolerance smoke: repeatedly severs and heals the middle
    # link of a supervised broker chain and asserts (inside the
    # binary) that every cycle reconverges within budget and the
    # repair cycles appear in the link metrics.
    echo "== chaos report (smoke) =="
    cargo run --release -p nb-bench --bin chaos_report -- --smoke
fi

echo "CI OK"
