#!/usr/bin/env bash
# Local CI gate: everything a change must pass before merging.
#
#   ./ci.sh            # build + test + clippy + strict docs
#   ./ci.sh --quick    # build + test only
#
# The workspace denies missing_docs ([workspace.lints.rust] in
# Cargo.toml), so the ordinary builds below already enforce
# documentation on every public item; the doc step additionally fails
# on broken intra-doc links and other rustdoc warnings.
set -euo pipefail
cd "$(dirname "$0")"

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test --workspace --quiet

if ! $quick; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "== clippy =="
        cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "== clippy not installed; skipping =="
    fi

    echo "== docs (strict) =="
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

    # Causal-tracing smoke: drives a secured 3-broker deployment and
    # asserts (inside the binary) that the exports are non-empty and at
    # least one trace covers the complete publish→hop2→apply chain.
    echo "== trace report (smoke) =="
    cargo run --release -p nb-bench --bin trace_report -- --smoke

    # Fault-tolerance smoke: repeatedly severs and heals the middle
    # link of a supervised broker chain and asserts (inside the
    # binary) that every cycle reconverges within budget and the
    # repair cycles appear in the link metrics.
    echo "== chaos report (smoke) =="
    cargo run --release -p nb-bench --bin chaos_report -- --smoke

    # Data-plane smoke: saturates a loopback broker with the route
    # cache off and on, asserts (inside the binary) exact delivery and
    # that the overhauled path wins, and writes BENCH_throughput.json;
    # then validate the JSON shape documented in docs/PERFORMANCE.md.
    echo "== throughput report (quick) =="
    cargo run --release -p nb-bench --bin throughput_report -- --quick
    python3 - <<'PY'
import json
with open("BENCH_throughput.json") as f:
    report = json.load(f)
assert report["bench"] == "throughput_report"
assert report["mode"] in ("quick", "full")
assert report["threads"] >= 1
for section in ("baseline", "overhauled"):
    run = report[section]
    for key in ("msgs_per_sec", "p50_route_ns", "p99_route_ns",
                "delivered", "fastpath", "slowpath",
                "cache_hits", "cache_stale"):
        assert key in run, f"{section}.{key} missing"
    assert run["msgs_per_sec"] > 0
assert report["overhauled"]["fastpath"] > 0
assert report["speedup"] > 1.0
print("BENCH_throughput.json shape OK "
      f"(speedup {report['speedup']}x)")
PY

    # Runtime-verification smoke: drives the same loopback broker with
    # the standard monitors off, on (unmonitored topic), and on a fully
    # monitored trace topic; asserts (inside the binary) exact
    # delivery, zero violations on clean traffic, and that monitors
    # cost < 10% of fast-path throughput, then writes
    # BENCH_monitor.json; validate the JSON shape documented in
    # docs/OBSERVABILITY.md.
    echo "== monitor report (quick) =="
    cargo run --release -p nb-bench --bin monitor_report -- --quick
    python3 - <<'PY'
import json
with open("BENCH_monitor.json") as f:
    report = json.load(f)
assert report["bench"] == "monitor_report"
assert report["mode"] in ("quick", "full")
assert report["threads"] >= 1
for section in ("monitors_off", "monitors_on", "monitored_topic"):
    run = report[section]
    for key in ("msgs_per_sec", "p50_route_ns", "p99_route_ns",
                "delivered"):
        assert key in run, f"{section}.{key} missing"
    assert run["msgs_per_sec"] > 0
assert report["monitor_events"] > 0
assert report["violations"] == 0
assert report["prefilter_overhead_pct"] < 10
assert "per_event_check_ns" in report
assert "sampled_check_ns_mean" in report
print("BENCH_monitor.json shape OK "
      f"(overhead {report['prefilter_overhead_pct']}%)")
PY
fi

echo "CI OK"
