#!/usr/bin/env bash
# Local CI gate: everything a change must pass before merging.
#
#   ./ci.sh            # build + test + clippy + strict docs
#   ./ci.sh --quick    # build + test only
#
# The workspace denies missing_docs ([workspace.lints.rust] in
# Cargo.toml), so the ordinary builds below already enforce
# documentation on every public item; the doc step additionally fails
# on broken intra-doc links and other rustdoc warnings.
set -euo pipefail
cd "$(dirname "$0")"

quick=false
[[ "${1:-}" == "--quick" ]] && quick=true

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test --workspace --quiet

# Session-layer smoke (runs in --quick too: it gates the security hot
# path): drives the hosting-broker trace path under the per-trace RSA
# regime and the session-tagged HMAC regime on the co-resident
# contention workload; asserts (inside the binary) exact delivery,
# monitor silence, zero RSA fallbacks, a ≥10x speedup over per-trace
# RSA, and that a populated keyring costs < 5% of the plain fast path,
# then writes BENCH_session.json; validate the shape documented in
# docs/PERFORMANCE.md.
echo "== session report (quick) =="
cargo run --release -p nb-bench --bin session_report -- --quick
python3 ci/check_bench_json.py session

if ! $quick; then
    if cargo clippy --version >/dev/null 2>&1; then
        echo "== clippy =="
        cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "== clippy not installed; skipping =="
    fi

    echo "== docs (strict) =="
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

    # Causal-tracing smoke: drives a secured 3-broker deployment and
    # asserts (inside the binary) that the exports are non-empty and at
    # least one trace covers the complete publish→hop2→apply chain.
    echo "== trace report (smoke) =="
    cargo run --release -p nb-bench --bin trace_report -- --smoke

    # Fault-tolerance smoke: repeatedly severs and heals the middle
    # link of a supervised broker chain and asserts (inside the
    # binary) that every cycle reconverges within budget and the
    # repair cycles appear in the link metrics.
    echo "== chaos report (smoke) =="
    cargo run --release -p nb-bench --bin chaos_report -- --smoke

    # Data-plane smoke: saturates a loopback broker with the route
    # cache off and on, asserts (inside the binary) exact delivery and
    # that the overhauled path wins, and writes BENCH_throughput.json;
    # then validate the JSON shape documented in docs/PERFORMANCE.md.
    echo "== throughput report (quick) =="
    cargo run --release -p nb-bench --bin throughput_report -- --quick
    python3 ci/check_bench_json.py throughput

    # Runtime-verification smoke: drives the same loopback broker with
    # the standard monitors off, on (unmonitored topic), and on a fully
    # monitored trace topic; asserts (inside the binary) exact
    # delivery, zero violations on clean traffic, and that monitors
    # cost < 10% of fast-path throughput, then writes
    # BENCH_monitor.json; validate the JSON shape documented in
    # docs/OBSERVABILITY.md.
    echo "== monitor report (quick) =="
    cargo run --release -p nb-bench --bin monitor_report -- --quick
    python3 ci/check_bench_json.py monitor

    # Telemetry-plane smoke: drives the loopback broker with the
    # node's own telemetry publisher off and on (aggregator ingesting
    # live), asserts (inside the binary) exact delivery, that genuine
    # frames verify, and that telemetry costs < 2% of fast-path
    # throughput, then writes BENCH_obs.json; validate the shape
    # documented in docs/OBSERVABILITY.md.
    echo "== obs report (quick) =="
    cargo run --release -p nb-bench --bin obs_report -- --quick
    python3 ci/check_bench_json.py obs

    # Durability smoke: measures raw WAL append rate, times restart
    # recovery against growing log lengths (and after a checkpoint),
    # and drives the loopback fast path volatile vs durable; asserts
    # (inside the binary) that replay covers every record, compaction
    # empties the log, and durability costs < 5% of data-plane
    # throughput, then writes BENCH_recovery.json; validate the shape
    # documented in docs/PERFORMANCE.md.
    echo "== recovery report (quick) =="
    cargo run --release -p nb-bench --bin recovery_report -- --quick
    python3 ci/check_bench_json.py recovery
fi

echo "CI OK"
