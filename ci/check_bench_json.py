#!/usr/bin/env python3
"""Validate the shape of a BENCH_*.json report.

Usage: check_bench_json.py <schema>

where <schema> is one of ``throughput``, ``monitor``, ``obs``,
``recovery`` or ``session``. Each
schema names the file the matching bench binary writes, the per-run
sections it must contain, and the report-level invariants CI holds it
to (see docs/PERFORMANCE.md and docs/OBSERVABILITY.md). Exits non-zero
with a message on the first violation.
"""

import json
import sys

RUN_KEYS = ("msgs_per_sec", "p50_route_ns", "p99_route_ns", "delivered")

SCHEMAS = {
    "throughput": {
        "file": "BENCH_throughput.json",
        "bench": "throughput_report",
        "sections": ("baseline", "overhauled"),
        "extra_run_keys": ("fastpath", "slowpath", "cache_hits", "cache_stale"),
    },
    "monitor": {
        "file": "BENCH_monitor.json",
        "bench": "monitor_report",
        "sections": ("monitors_off", "monitors_on", "monitored_topic"),
        "extra_run_keys": (),
    },
    "obs": {
        "file": "BENCH_obs.json",
        "bench": "obs_report",
        "sections": ("telemetry_off", "telemetry_on"),
        "extra_run_keys": (),
    },
    # The recovery report has its own shape (no per-run route sections):
    # WAL append rate, a recovery-time-vs-log-length curve, the
    # checkpointed restart, and the durable-vs-volatile fast path.
    "recovery": {
        "file": "BENCH_recovery.json",
        "bench": "recovery_report",
        "sections": (),
        "extra_run_keys": (),
    },
    "session": {
        "file": "BENCH_session.json",
        "bench": "session_report",
        "sections": (
            "rsa_signed",
            "rsa_token",
            "session",
            "fastpath_no_keys",
            "fastpath_keys",
        ),
        "extra_run_keys": (),
    },
}


def check(schema_name: str) -> str:
    schema = SCHEMAS[schema_name]
    with open(schema["file"]) as f:
        report = json.load(f)

    assert report["bench"] == schema["bench"], f"wrong bench: {report['bench']}"
    assert report["mode"] in ("quick", "full"), f"bad mode: {report['mode']}"
    assert report["threads"] >= 1
    for section in schema["sections"]:
        run = report[section]
        for key in RUN_KEYS + schema["extra_run_keys"]:
            assert key in run, f"{section}.{key} missing"
        assert run["msgs_per_sec"] > 0, f"{section} measured nothing"

    if schema_name == "throughput":
        assert report["overhauled"]["fastpath"] > 0
        assert report["speedup"] > 1.0, f"no speedup: {report['speedup']}"
        return f"speedup {report['speedup']}x"
    if schema_name == "monitor":
        assert report["monitor_events"] > 0
        assert report["violations"] == 0
        assert report["prefilter_overhead_pct"] < 10
        assert "per_event_check_ns" in report
        assert "sampled_check_ns_mean" in report
        return f"overhead {report['prefilter_overhead_pct']}%"
    if schema_name == "obs":
        assert report["frames_accepted"] > 0, "telemetry plane never ran"
        assert report["frames_rejected"] == 0, "genuine frames were rejected"
        assert report["overhead_pct"] < 2, f"telemetry overhead {report['overhead_pct']}%"
        assert report["prometheus_bytes"] > 0
        assert report["json_bytes"] > 0
        return f"overhead {report['overhead_pct']}%"
    if schema_name == "recovery":
        append = report["wal_append"]
        assert append["records"] > 0 and append["appends_per_sec"] > 0
        assert append["mb_per_sec"] > 0
        curve = report["recovery_curve"]
        assert curve, "recovery curve is empty"
        for point in curve:
            assert point["replayed"] == point["log_records"], "replay lost records"
            assert point["recovery_ms"] >= 0
            assert point["replay_per_sec"] > 0
        ckpt = report["checkpointed"]
        assert ckpt["replayed"] == 0, "checkpoint did not compact the log"
        assert ckpt["snapshot_seq"] == ckpt["log_records"]
        steady = report["steady_state"]
        assert steady["volatile_msgs_per_sec"] > 0
        assert steady["durable_msgs_per_sec"] > 0
        assert steady["overhead_pct"] < 5, f"WAL overhead {steady['overhead_pct']}%"
        assert steady["wal_records"] > 0, "durable broker journalled nothing"
        return f"overhead {steady['overhead_pct']}%"
    if schema_name == "session":
        speedup = report["speedup_vs_rsa_signed"]
        assert speedup >= 10, f"session only {speedup}x over per-trace RSA (bar: 10x)"
        assert report["speedup_vs_rsa_token"] > 1
        assert report["session_verified"] > 0, "keyring never authenticated a frame"
        assert report["session_fallbacks"] == 0, "session frames fell back to RSA"
        assert report["monitor_events"] > 0, "monitors never saw the traffic"
        assert report["violations"] == 0, "clean traffic raised violations"
        pct = report["session_fastpath_overhead_pct"]
        assert pct < 5, f"session gate costs {pct}% of fast-path throughput"
        return f"speedup {speedup}x, fastpath overhead {pct}%"
    raise AssertionError(f"unhandled schema {schema_name}")


def main() -> int:
    if len(sys.argv) != 2 or sys.argv[1] not in SCHEMAS:
        names = ", ".join(sorted(SCHEMAS))
        print(f"usage: {sys.argv[0]} <{names}>", file=sys.stderr)
        return 2
    name = sys.argv[1]
    try:
        detail = check(name)
    except (AssertionError, KeyError, OSError, json.JSONDecodeError) as e:
        print(f"{SCHEMAS[name]['file']} FAILED: {e!r}", file=sys.stderr)
        return 1
    print(f"{SCHEMAS[name]['file']} shape OK ({detail})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
