//! Cross-crate integration tests through the `entity-tracing` facade:
//! the full stack under failure injection, lossy links, and adversarial
//! inputs.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use entity_tracing::prelude::*;
use entity_tracing::tracing::config::SigningMode as Mode;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(15);

/// The loss-injection tests each stand up a deployment with hundreds
/// of threads and probabilistic delivery; running them concurrently
/// makes their tail latencies compound. Serialize them.
static LOSSY_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Serializes a lossy test, recovering the gate if a previous holder
/// panicked — one failing test must not cascade into poison panics in
/// every later gated test.
fn lossy_gate() -> std::sync::MutexGuard<'static, ()> {
    LOSSY_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn fast_config() -> TracingConfig {
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    config
}

#[test]
fn prelude_quickstart_flow() {
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::instant(),
        system_clock(),
        fast_config(),
    )
    .unwrap();
    let entity = deployment
        .traced_entity(
            0,
            "svc",
            DiscoveryRestrictions::Open,
            Mode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = deployment
        .tracker(
            1,
            "watcher",
            "svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().status("svc") == Some(EntityStatus::Available)
    }));
    assert!(wait_until(WAIT, || entity.pings_answered() >= 2));
}

#[test]
fn tracking_survives_a_lossy_entity_link() {
    let _gate = lossy_gate();
    // 20% loss on every link: pings and responses drop, the adaptive
    // interval kicks in, but a live entity must stay Available (no
    // false FAILED verdict) because suspicion needs *consecutive*
    // losses beyond the threshold and responses keep resetting it.
    let mut config = fast_config();
    config.suspicion_threshold = 4;
    config.failure_threshold = 4;
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::lossy(0.2).with_latency(Duration::from_micros(200)),
        system_clock(),
        config,
    )
    .unwrap();
    let entity = deployment
        .traced_entity(
            0,
            "flaky-link-svc",
            DiscoveryRestrictions::Open,
            Mode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = deployment
        .tracker(
            1,
            "patient-watcher",
            "flaky-link-svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();

    assert!(wait_until(WAIT, || entity.pings_answered() >= 10));
    assert!(wait_until(WAIT, || {
        tracker.view().status("flaky-link-svc") == Some(EntityStatus::Available)
    }));
    // Whatever transient suspicions occurred, the entity must not be
    // deemed failed while it keeps answering.
    assert_ne!(
        deployment.engine(0).liveness_of("flaky-link-svc"),
        Some(entity_tracing::tracing::Liveness::Failed)
    );
}

#[test]
fn network_metrics_reflect_injected_loss() {
    let _gate = lossy_gate();
    let mut config = fast_config();
    config.suspicion_threshold = 6;
    config.failure_threshold = 6;
    config.metrics_interval = Duration::from_millis(200);
    // 15% loss: enough that the ping window reliably records losses,
    // low enough that GAUGE_INTEREST refresh round trips outpace the
    // 4×gauge_interval interest TTL (at 30% loss the tracker's
    // interest entry flaps and metrics publication gets gated).
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::lossy(0.15).with_latency(Duration::from_micros(200)),
        system_clock(),
        config,
    )
    .unwrap();
    let _entity = deployment
        .traced_entity(
            0,
            "measured-svc",
            DiscoveryRestrictions::Open,
            Mode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = deployment
        .tracker(
            1,
            "metrics-watcher",
            "measured-svc",
            vec![
                TraceCategory::NetworkMetrics,
                TraceCategory::ChangeNotifications,
            ],
        )
        .unwrap();

    // Eventually a NETWORK_METRICS trace arrives showing nonzero loss.
    // Generous timeout: 30% loss on every link makes each control and
    // trace exchange probabilistic, and the suite runs under parallel
    // CPU contention.
    assert!(wait_until(Duration::from_secs(90), || {
        tracker
            .view()
            .get("measured-svc")
            .and_then(|r| r.network)
            .map(|m| m.loss_rate > 0.0)
            .unwrap_or(false)
    }));
}

#[test]
fn duplicated_frames_do_not_corrupt_the_view() {
    let _gate = lossy_gate();
    let mut link = LinkConfig::instant();
    link.duplicate_rate = 0.5;
    let deployment = Deployment::new(
        Topology::Chain(2),
        link,
        system_clock(),
        fast_config(),
    )
    .unwrap();
    let entity = deployment
        .traced_entity(
            0,
            "dup-svc",
            DiscoveryRestrictions::Open,
            Mode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = deployment
        .tracker(
            1,
            "dup-watcher",
            "dup-svc",
            vec![
                TraceCategory::ChangeNotifications,
                TraceCategory::AllUpdates,
                TraceCategory::StateTransitions,
            ],
        )
        .unwrap();
    assert!(wait_until(WAIT, || entity.pings_answered() >= 5));
    assert!(wait_until(WAIT, || {
        tracker.view().status("dup-svc") == Some(EntityStatus::Available)
    }));
    // Stale-sequence filtering keeps the view consistent.
    entity.set_state(EntityState::Shutdown).unwrap();
    entity.stop();
    assert!(wait_until(WAIT, || {
        tracker.view().get("dup-svc").and_then(|r| r.state) == Some(EntityState::Shutdown)
    }));
}

#[test]
fn many_entities_many_trackers_cross_broker() {
    let deployment = Deployment::new(
        Topology::Star(3),
        LinkConfig::instant(),
        system_clock(),
        fast_config(),
    )
    .unwrap();
    let mut entities = Vec::new();
    for i in 0..6 {
        entities.push(
            deployment
                .traced_entity(
                    1 + (i % 3),
                    &format!("svc-{i}"),
                    DiscoveryRestrictions::Open,
                    Mode::RsaSign,
                    false,
                )
                .unwrap(),
        );
    }
    let mut trackers = Vec::new();
    for i in 0..6 {
        trackers.push(
            deployment
                .tracker(
                    0,
                    &format!("watch-{i}"),
                    &format!("svc-{i}"),
                    vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
                )
                .unwrap(),
        );
    }
    for (i, tracker) in trackers.iter().enumerate() {
        assert!(
            wait_until(WAIT, || {
                tracker.view().status(&format!("svc-{i}")) == Some(EntityStatus::Available)
            }),
            "svc-{i} never became available"
        );
    }
    // Kill half the fleet; exactly those become Failed.
    for entity in entities.iter().step_by(2) {
        entity.stop();
    }
    for (i, tracker) in trackers.iter().enumerate() {
        let want = if i % 2 == 0 {
            EntityStatus::Failed
        } else {
            EntityStatus::Available
        };
        assert!(
            wait_until(Duration::from_secs(30), || {
                tracker.view().status(&format!("svc-{i}")) == Some(want)
            }),
            "svc-{i} did not reach {want:?}"
        );
    }
}

#[test]
fn metrics_snapshot_covers_every_layer() {
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::instant(),
        system_clock(),
        fast_config(),
    )
    .unwrap();
    let entity = deployment
        .traced_entity(
            0,
            "metered-svc",
            DiscoveryRestrictions::Open,
            Mode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = deployment
        .tracker(
            1,
            "metered-watcher",
            "metered-svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();
    assert!(wait_until(WAIT, || {
        tracker.view().status("metered-svc") == Some(EntityStatus::Available)
    }));
    assert!(wait_until(WAIT, || entity.pings_answered() >= 2));

    let snapshot = deployment.metrics_snapshot();

    // Broker layer: the home broker accepted the entity's publishes and
    // delivered to local consumers; the trace topic shows up in the
    // per-family counters.
    assert!(snapshot.counter("broker-0.broker.publish.accepted").unwrap() > 0);
    assert!(snapshot.counter("broker-0.broker.deliver.local").unwrap() > 0);
    assert!(snapshot.counter_sum("broker-0.broker.publish.topic.") > 0);

    // Tracing engine layer: pings flowed, traces were published, and a
    // session is live at broker 0.
    assert!(snapshot.counter("broker-0.tracing.pings.sent").unwrap() > 0);
    assert!(snapshot.counter("broker-0.tracing.traces.published").unwrap() > 0);
    assert_eq!(snapshot.gauge("broker-0.tracing.sessions"), Some(1));

    // TDN layer: the entity created its trace topic at one member and
    // the cluster replicated it; the tracker ran a discovery query.
    assert!(snapshot.counter_sum("tdn-0.tdn.topics.created") + snapshot.counter_sum("tdn-1.tdn.topics.created") > 0);
    assert!(snapshot.counter_sum("tdn-0.tdn.discovery.queries") > 0 || snapshot.counter_sum("tdn-1.tdn.discovery.queries") > 0 || snapshot.counter_sum("tdn-2.tdn.discovery.queries") > 0);

    // Process-wide layers (shared with concurrently running tests, so
    // only direction is asserted): transport moved frames, tokens were
    // minted and verified, RSA signing ran.
    assert!(snapshot.counter("transport.frames.sent").unwrap() > 0);
    assert!(snapshot.counter("transport.bytes.sent").unwrap() > 0);
    assert!(snapshot.counter("token.minted").unwrap() > 0);
    assert!(snapshot.counter("token.verify.ok").unwrap() > 0);
    let sign = snapshot.histogram("crypto.rsa.sign_us").expect("rsa sign timings");
    assert!(sign.count > 0);

    // The rendered forms carry every entry.
    let table = snapshot.to_table();
    let dump = snapshot.to_dump();
    for needle in ["broker-0.broker.publish.accepted", "crypto.rsa.sign_us"] {
        assert!(table.contains(needle), "table missing {needle}");
        assert!(dump.contains(needle), "dump missing {needle}");
    }
}

#[test]
fn broker_discovery_selects_a_valid_broker() {
    let deployment = Deployment::new(
        Topology::Chain(3),
        LinkConfig::instant(),
        system_clock(),
        fast_config(),
    )
    .unwrap();
    let record = deployment
        .directory
        .discover(&deployment.ca_key(), deployment.clock.now_ms())
        .expect("a broker must be discoverable");
    assert!(record.broker_id.starts_with("broker-"));
    // The record's certificate chains to the deployment CA.
    record
        .certificate
        .verify(&deployment.ca_key(), deployment.clock.now_ms())
        .unwrap();
}

#[test]
fn view_is_shared_across_clones_and_threads() {
    let deployment = Deployment::new(
        Topology::Chain(2),
        LinkConfig::instant(),
        system_clock(),
        fast_config(),
    )
    .unwrap();
    let _entity = deployment
        .traced_entity(
            0,
            "shared-svc",
            DiscoveryRestrictions::Open,
            Mode::RsaSign,
            false,
        )
        .unwrap();
    let tracker = deployment
        .tracker(
            1,
            "shared-watcher",
            "shared-svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .unwrap();
    let view = tracker.view();
    let handle = std::thread::spawn(move || {
        let deadline = Instant::now() + WAIT;
        while Instant::now() < deadline {
            if view.status("shared-svc") == Some(EntityStatus::Available) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    });
    assert!(handle.join().unwrap());
}
